//! The multi-tenant schema registry behind `nfdtool serve`.
//!
//! [`Registry`] implements [`nfd_serve::Handler`]: it keeps many named
//! schemas resident as compiled [`Session`]s and answers the protocol's
//! workload verbs against them. The transport, admission gate, unwind
//! boundaries and drain protocol all live in the `nfd-serve` crate;
//! what lives here is the NFD side:
//!
//! * **Resident sessions without `'static` gymnastics.** `Session<'s>`
//!   borrows its `Schema`, which is exactly right for one CLI
//!   invocation and exactly wrong for a daemon. Rather than leak or
//!   unsafely self-reference, each tenant gets an *actor thread* that
//!   owns `(Schema, Σ, Session)` on its stack and serves queries over
//!   an `mpsc` channel. Evicting a tenant drops the channel sender; the
//!   actor sees the hangup and unwinds its stack naturally — no leaks,
//!   no `unsafe`.
//! * **Crash containment in depth.** The actor wraps every query in
//!   `catch_unwind` (on top of the server's per-request boundary), so a
//!   poisoned query answers `ERR` and the *session survives* — the next
//!   query on the same tenant is served from the same warm caches.
//!   Should an actor die anyway, the failed channel send is detected,
//!   the tenant is evicted, and the client gets `ERR`, never a hang.
//! * **Per-tenant quotas.** A tenant's remaining work units (set at
//!   `LOAD` from [`RegistryConfig::default_quota`], adjusted by
//!   `QUOTA`) cap the [`Budget`] of every query; a drained quota
//!   answers `EXHAUSTED` *before* dispatch. Queries are charged their
//!   actual decider cost (max attempt counter, min 1), so expensive
//!   tenants drain faster — the budget-constrained-FD framing from
//!   PAPERS.md as an admission policy.
//! * **LRU residency.** At most [`RegistryConfig::max_resident`]
//!   sessions stay warm; loading past the cap retires the
//!   least-recently-used tenant (its actor exits, freeing the compiled
//!   tables).
//!
//! Per-request deadlines ([`RegistryConfig::request_timeout_ms`]) apply
//! to the *query* budgets only. The resident engine is compiled under a
//! counters-only budget: a deadline baked into the session at `LOAD`
//! would be in the past for every later query, poisoning `CLOSURE` and
//! `KEYS`, which run on the resident engine.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;

use nfd_core::{CoreError, EmptySetPolicy, Nfd};
use nfd_faults::fail_point;
use nfd_govern::{Budget, Verdict};
use nfd_model::{Label, Schema};
use nfd_path::{Path, RootedPath};
use nfd_serve::{Command, Handler, Response};

use crate::session::Session;

/// Tuning for the registry side of the server (the transport side is
/// [`nfd_serve::ServerConfig`]).
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Resident-session cap; loading past it evicts the LRU tenant.
    pub max_resident: usize,
    /// Work-unit quota a tenant starts with (`None` = unmetered).
    pub default_quota: Option<u64>,
    /// Per-query budget counters ([`Budget::limited`]); `None` uses
    /// [`Budget::standard`]. Also governs session compilation and the
    /// resident engine serving `CLOSURE`/`KEYS`.
    pub query_budget: Option<u64>,
    /// Wall-clock deadline per `IMPLIES`/`BATCH` query (ms; 0 = none).
    pub request_timeout_ms: u64,
}

impl Default for RegistryConfig {
    fn default() -> RegistryConfig {
        RegistryConfig {
            max_resident: 8,
            default_quota: None,
            query_budget: None,
            request_timeout_ms: 30_000,
        }
    }
}

/// A query shipped to a tenant's actor thread.
enum Query {
    Implies { goal: String },
    Batch { goals: String },
    Closure { base: String, lhs: Option<String> },
    Keys { relation: String },
    AddDep { dep: String },
    DropDep { dep: String },
    Snapshot { path: String },
}

struct Request {
    query: Query,
    budget: Budget,
    reply: mpsc::Sender<Reply>,
}

struct Reply {
    response: Response,
    /// Work units to charge against the tenant quota.
    cost: u64,
}

/// One resident tenant: the channel to its actor and its quota state.
/// The `Vec<Tenant>` in [`Registry`] is kept in most-recently-used
/// order, front first — that ordering *is* the LRU policy.
struct Tenant {
    name: String,
    tx: Option<mpsc::Sender<Request>>,
    quota: Option<u64>,
    worker: Option<JoinHandle<()>>,
}

impl Tenant {
    /// Hangs up the actor's channel and joins it. Joining may wait for
    /// an in-flight query on another connection to finish — that is the
    /// drain guarantee, not a bug.
    fn retire(mut self) {
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Tenant {
    fn drop(&mut self) {
        // `retire` already took both; this path covers tenants dropped
        // without an explicit retire (e.g. an unwinding test).
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[derive(Debug, Default)]
struct RegistryCounters {
    loads: AtomicU64,
    reloads: AtomicU64,
    evicted: AtomicU64,
    evicted_lru: AtomicU64,
    queries: AtomicU64,
    quota_denials: AtomicU64,
    worker_failures: AtomicU64,
    /// `SNAPSHOT` verbs that wrote an image to disk.
    snapshots_written: AtomicU64,
    /// `RESTORE` verbs answered from a bit-identical thaw.
    restores_ok: AtomicU64,
    /// `RESTORE` verbs whose image was unusable even for salvage.
    restores_rejected: AtomicU64,
    /// `RESTORE` verbs that degraded to a fresh compile (corrupt or
    /// stale compiled sections with salvageable sources).
    thaw_fallbacks: AtomicU64,
}

/// The multi-tenant session registry; implement [`Handler`] and hand it
/// to [`nfd_serve::Server::bind`].
pub struct Registry {
    cfg: RegistryConfig,
    tenants: Mutex<Vec<Tenant>>,
    counters: RegistryCounters,
}

impl Registry {
    /// An empty registry.
    pub fn new(cfg: RegistryConfig) -> Registry {
        Registry {
            cfg,
            tenants: Mutex::new(Vec::new()),
            counters: RegistryCounters::default(),
        }
    }

    /// The budget sessions are *compiled* under and the resident engine
    /// serves `CLOSURE`/`KEYS` with: counters only, never a deadline
    /// (see the module docs for why).
    fn build_budget(&self) -> Budget {
        match self.cfg.query_budget {
            Some(n) => Budget::limited(n),
            None => Budget::standard(),
        }
    }

    /// The budget for one `IMPLIES`/`BATCH` query: configured counters
    /// tightened to the tenant's remaining quota, plus the per-request
    /// deadline. A deadline this close to the wire is what keeps a
    /// pathological goal from holding an admission slot forever.
    fn query_budget(&self, remaining_quota: Option<u64>) -> Budget {
        let budget = match (self.cfg.query_budget, remaining_quota) {
            (None, None) => Budget::standard(),
            (cap, quota) => Budget::limited(cap.unwrap_or(u64::MAX).min(quota.unwrap_or(u64::MAX))),
        };
        if self.cfg.request_timeout_ms > 0 {
            budget.with_timeout_ms(self.cfg.request_timeout_ms)
        } else {
            budget
        }
    }

    /// Registers a freshly handshaken tenant: MRU-front insert, reload
    /// bookkeeping, and LRU eviction past the residency cap.
    fn adopt(&self, name: String, tx: mpsc::Sender<Request>, worker: JoinHandle<()>) {
        let tenant = Tenant {
            name: name.clone(),
            tx: Some(tx),
            quota: self.cfg.default_quota,
            worker: Some(worker),
        };
        let mut retired: Vec<Tenant> = Vec::new();
        {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(pos) = tenants.iter().position(|t| t.name == name) {
                retired.push(tenants.remove(pos));
                self.counters.reloads.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.loads.fetch_add(1, Ordering::Relaxed);
            }
            tenants.insert(0, tenant);
            while tenants.len() > self.cfg.max_resident.max(1) {
                if let Some(cold) = tenants.pop() {
                    self.counters.evicted_lru.fetch_add(1, Ordering::Relaxed);
                    retired.push(cold);
                }
            }
        }
        // Join retired actors outside the lock: an in-flight query on a
        // replaced tenant may still need to finish.
        for tenant in retired {
            tenant.retire();
        }
    }

    fn load(&self, name: String, schema: String, deps: String) -> Response {
        let (ready_tx, ready_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let budget = self.build_budget();
        let worker = std::thread::spawn(move || actor(schema, deps, budget, rx, ready_tx));
        match ready_rx.recv() {
            Ok(Ok(dep_count)) => {
                self.adopt(name, tx, worker);
                Response::Ok(format!("loaded deps={dep_count}"))
            }
            Ok(Err(resp)) => {
                drop(tx);
                let _ = worker.join();
                resp
            }
            Err(_) => {
                // The actor died before the handshake — nothing was
                // registered, so nothing to evict.
                drop(tx);
                let _ = worker.join();
                self.counters
                    .worker_failures
                    .fetch_add(1, Ordering::Relaxed);
                Response::Err("session worker died during load".to_string())
            }
        }
    }

    /// `RESTORE <name> <path>`: resurrect a session from a snapshot
    /// file. A clean image thaws without re-running saturation; an image
    /// with corrupt compiled sections but salvageable sources (or one
    /// whose thaw is rejected by replay validation) degrades to a fresh
    /// compile of those sources — a logged fallback, not a failure. Only
    /// an image too damaged to recover the sources answers `ERR`.
    fn restore(&self, name: String, path: String) -> Response {
        let (ready_tx, ready_rx) = mpsc::channel();
        let (tx, rx) = mpsc::channel();
        let budget = self.build_budget();
        let worker = std::thread::spawn(move || restore_actor(path, budget, rx, ready_tx));
        match ready_rx.recv() {
            Ok(Ok((dep_count, fallback))) => {
                self.adopt(name, tx, worker);
                if fallback {
                    self.counters.thaw_fallbacks.fetch_add(1, Ordering::Relaxed);
                    Response::Ok(format!(
                        "restored deps={dep_count} (thaw rejected; compiled fresh)"
                    ))
                } else {
                    self.counters.restores_ok.fetch_add(1, Ordering::Relaxed);
                    Response::Ok(format!("restored deps={dep_count} (thawed)"))
                }
            }
            Ok(Err(resp)) => {
                self.counters
                    .restores_rejected
                    .fetch_add(1, Ordering::Relaxed);
                drop(tx);
                let _ = worker.join();
                resp
            }
            Err(_) => {
                drop(tx);
                let _ = worker.join();
                self.counters
                    .restores_rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.counters
                    .worker_failures
                    .fetch_add(1, Ordering::Relaxed);
                Response::Err("session worker died during restore".to_string())
            }
        }
    }

    fn run_query(&self, name: &str, query: Query) -> Response {
        fail_point!(
            "serve::tenant_query",
            Response::Exhausted("injected fault (failpoint)".to_string())
        );
        let (tx, remaining) = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(pos) = tenants.iter().position(|t| t.name == name) else {
                return Response::Err(format!("unknown tenant `{name}` (LOAD it first)"));
            };
            if tenants[pos].quota == Some(0) {
                self.counters.quota_denials.fetch_add(1, Ordering::Relaxed);
                return Response::Exhausted(format!("tenant `{name}` quota exhausted"));
            }
            // Touch for LRU: most-recently-used lives at the front.
            let tenant = tenants.remove(pos);
            let handle = (tenant.tx.clone(), tenant.quota);
            tenants.insert(0, tenant);
            handle
        };
        let Some(tx) = tx else {
            return self.worker_failed(name);
        };
        let budget = self.query_budget(remaining);
        let (reply_tx, reply_rx) = mpsc::channel();
        let request = Request {
            query,
            budget,
            reply: reply_tx,
        };
        if tx.send(request).is_err() {
            return self.worker_failed(name);
        }
        match reply_rx.recv() {
            Ok(reply) => {
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                self.charge(name, reply.cost);
                reply.response
            }
            Err(_) => self.worker_failed(name),
        }
    }

    /// A tenant's actor hung up mid-request: evict it so the registry
    /// converges back to a healthy state, and say so honestly.
    fn worker_failed(&self, name: &str) -> Response {
        self.counters
            .worker_failures
            .fetch_add(1, Ordering::Relaxed);
        let dead = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            tenants
                .iter()
                .position(|t| t.name == name)
                .map(|pos| tenants.remove(pos))
        };
        if let Some(tenant) = dead {
            self.counters.evicted.fetch_add(1, Ordering::Relaxed);
            tenant.retire();
        }
        Response::Err(format!("tenant `{name}` worker failed; session evicted"))
    }

    fn charge(&self, name: &str, cost: u64) {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(tenant) = tenants.iter_mut().find(|t| t.name == name) {
            if let Some(quota) = tenant.quota.as_mut() {
                *quota = quota.saturating_sub(cost.max(1));
            }
        }
    }

    fn set_quota(&self, name: &str, units: u64) -> Response {
        let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
        match tenants.iter_mut().find(|t| t.name == name) {
            Some(tenant) => {
                tenant.quota = Some(units);
                Response::Ok(format!("quota={units}"))
            }
            None => Response::Err(format!("unknown tenant `{name}` (LOAD it first)")),
        }
    }

    fn evict(&self, name: &str) -> Response {
        let gone = {
            let mut tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            tenants
                .iter()
                .position(|t| t.name == name)
                .map(|pos| tenants.remove(pos))
        };
        match gone {
            Some(tenant) => {
                self.counters.evicted.fetch_add(1, Ordering::Relaxed);
                tenant.retire();
                Response::Ok("evicted".to_string())
            }
            None => Response::Err(format!("unknown tenant `{name}`")),
        }
    }
}

impl Handler for Registry {
    fn handle(&self, cmd: Command) -> Response {
        match cmd {
            Command::Load { name, schema, deps } => self.load(name, schema, deps),
            Command::Implies { name, goal } => self.run_query(&name, Query::Implies { goal }),
            Command::Batch { name, goals } => self.run_query(&name, Query::Batch { goals }),
            Command::Closure { name, base, lhs } => {
                self.run_query(&name, Query::Closure { base, lhs })
            }
            Command::Keys { name, relation } => self.run_query(&name, Query::Keys { relation }),
            Command::AddDep { name, dep } => self.run_query(&name, Query::AddDep { dep }),
            Command::DropDep { name, dep } => self.run_query(&name, Query::DropDep { dep }),
            Command::Snapshot { name, path } => {
                let response = self.run_query(&name, Query::Snapshot { path });
                if response.is_ok() {
                    self.counters
                        .snapshots_written
                        .fetch_add(1, Ordering::Relaxed);
                }
                response
            }
            Command::Restore { name, path } => self.restore(name, path),
            Command::Quota { name, units } => self.set_quota(&name, units),
            Command::Evict { name } => self.evict(&name),
            // The server answers these itself; reaching here means a
            // custom harness skipped it — answer something sane.
            Command::Stats => Response::Ok(self.stats_line()),
            Command::Ping => Response::Ok("pong".to_string()),
            Command::Shutdown => Response::Ok("draining".to_string()),
        }
    }

    fn stats_line(&self) -> String {
        let resident: Vec<String> = {
            let tenants = self.tenants.lock().unwrap_or_else(PoisonError::into_inner);
            tenants.iter().map(|t| t.name.clone()).collect()
        };
        let c = &self.counters;
        format!(
            "sessions={} resident=[{}] loads={} reloads={} evicted={} evicted_lru={} queries={} quota_denials={} worker_failures={} snapshots_written={} restores_ok={} restores_rejected={} thaw_fallbacks={}",
            resident.len(),
            resident.join(","),
            c.loads.load(Ordering::Relaxed),
            c.reloads.load(Ordering::Relaxed),
            c.evicted.load(Ordering::Relaxed),
            c.evicted_lru.load(Ordering::Relaxed),
            c.queries.load(Ordering::Relaxed),
            c.quota_denials.load(Ordering::Relaxed),
            c.worker_failures.load(Ordering::Relaxed),
            c.snapshots_written.load(Ordering::Relaxed),
            c.restores_ok.load(Ordering::Relaxed),
            c.restores_rejected.load(Ordering::Relaxed),
            c.thaw_fallbacks.load(Ordering::Relaxed),
        )
    }

    fn on_shutdown(&self) {
        let tenants =
            std::mem::take(&mut *self.tenants.lock().unwrap_or_else(PoisonError::into_inner));
        for tenant in tenants {
            tenant.retire();
        }
    }
}

/// The actor: owns the compiled `(Schema, Σ, Session)` on its stack and
/// serves queries until every channel sender is dropped (eviction,
/// reload, or shutdown). This is what makes borrowed `Session<'s>`
/// residency safe: the borrow lives inside one thread's stack frame.
fn actor(
    schema_src: String,
    deps_src: String,
    budget: Budget,
    rx: mpsc::Receiver<Request>,
    ready: mpsc::Sender<Result<usize, Response>>,
) {
    let schema = match Schema::parse(&schema_src) {
        Ok(schema) => schema,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("schema: {e}"))));
            return;
        }
    };
    let sigma = match nfd_core::nfd::parse_set(&schema, &deps_src) {
        Ok(sigma) => sigma,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("deps: {e}"))));
            return;
        }
    };
    let mut session = match Session::with_budget(&schema, &sigma, EmptySetPolicy::Forbidden, budget)
    {
        Ok(session) => session,
        Err(e) => {
            let _ = ready.send(Err(core_error_response(e)));
            return;
        }
    };
    if ready.send(Ok(sigma.len())).is_err() {
        return;
    }
    serve_loop(&mut session, &schema, rx);
}

/// The actor behind `RESTORE`: reads the snapshot, thaws it when the
/// image is intact, and degrades to a fresh compile of the sources
/// salvaged from the image otherwise. The ready handshake reports
/// `(dep_count, fell_back_to_fresh_compile)` so the registry can keep
/// honest counters; only an image whose schema/Σ sources cannot be
/// recovered at all answers `Err`.
fn restore_actor(
    path: String,
    budget: Budget,
    rx: mpsc::Receiver<Request>,
    ready: mpsc::Sender<Result<(usize, bool), Response>>,
) {
    let salvaged = match nfd_snap::read_file(std::path::Path::new(&path))
        .and_then(|bytes| nfd_snap::decode_lenient(&bytes))
    {
        Ok(salvaged) => salvaged,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: {e}"))));
            return;
        }
    };
    let snap = salvaged.snapshot;
    let schema = match Schema::parse(&snap.schema_text) {
        Ok(schema) => schema,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: schema: {e}"))));
            return;
        }
    };
    let sigma = match nfd_core::nfd::parse_set(&schema, &snap.sigma_text) {
        Ok(sigma) => sigma,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: deps: {e}"))));
            return;
        }
    };
    let policy = match crate::snapshot::policy_from_snap(&snap.policy) {
        Ok(policy) => policy,
        Err(e) => {
            let _ = ready.send(Err(Response::Err(format!("restore: policy: {e}"))));
            return;
        }
    };
    // Warm path first: a clean image replays without re-running
    // saturation. Any thaw rejection — truncated compiled sections in a
    // lenient salvage, or replay validation refusing the pools — falls
    // back to compiling the salvaged sources fresh.
    let mut fallback = salvaged.degraded;
    let thawed = if fallback {
        None
    } else {
        match Session::thaw(
            &schema,
            &sigma,
            policy.clone(),
            budget.clone(),
            nfd_core::TierPreference::Auto,
            &snap,
        ) {
            Ok(session) => Some(session),
            Err(_) => {
                fallback = true;
                None
            }
        }
    };
    let mut session = match thawed {
        Some(session) => session,
        None => match Session::with_budget(&schema, &sigma, policy, budget) {
            Ok(session) => session,
            Err(e) => {
                let _ = ready.send(Err(core_error_response(e)));
                return;
            }
        },
    };
    if ready.send(Ok((sigma.len(), fallback))).is_err() {
        return;
    }
    serve_loop(&mut session, &schema, rx);
}

/// Serves queries until every channel sender is dropped (eviction,
/// reload, or shutdown), containing per-query panics so the warm
/// session survives a poisoned request.
fn serve_loop(session: &mut Session<'_>, schema: &Schema, rx: mpsc::Receiver<Request>) {
    while let Ok(request) = rx.recv() {
        // Inner unwind boundary: a poisoned query answers ERR and the
        // warm session keeps serving (the server's per-request boundary
        // would otherwise only save the connection, not the tenant).
        let reply = catch_unwind(AssertUnwindSafe(|| {
            answer(session, schema, request.query, &request.budget)
        }))
        .unwrap_or_else(|payload| Reply {
            response: Response::Err(format!("contained panic: {}", panic_text(payload.as_ref()))),
            cost: 1,
        });
        let _ = request.reply.send(reply);
    }
}

fn answer(session: &mut Session<'_>, schema: &Schema, query: Query, budget: &Budget) -> Reply {
    match query {
        Query::Implies { goal } => {
            let goal = match Nfd::parse(schema, &goal) {
                Ok(goal) => goal,
                Err(e) => return input_error(e),
            };
            match session.implies_with(&goal, budget) {
                Ok(decision) => {
                    let cost = decision_cost(&decision);
                    Reply {
                        response: verdict_response(&decision.verdict),
                        cost,
                    }
                }
                Err(e) => input_error(e),
            }
        }
        Query::Batch { goals } => {
            let goals = match nfd_core::nfd::parse_set(schema, &goals) {
                Ok(goals) => goals,
                Err(e) => return input_error(e),
            };
            if goals.is_empty() {
                return Reply {
                    response: Response::Err("BATCH: empty goal set".to_string()),
                    cost: 1,
                };
            }
            match session.implies_batch(&goals, budget, 1) {
                Ok(batch) => {
                    let statuses: Vec<&str> = batch
                        .decisions
                        .iter()
                        .map(|d| match d {
                            Ok(d) => match d.verdict {
                                Verdict::Implied => "implied",
                                Verdict::NotImplied => "not-implied",
                                Verdict::Exhausted(_) => "exhausted",
                            },
                            Err(_) => "failed",
                        })
                        .collect();
                    let cost = batch
                        .decisions
                        .iter()
                        .map(|d| d.as_ref().map(decision_cost).unwrap_or(1))
                        .sum::<u64>()
                        .max(1);
                    Reply {
                        response: Response::Ok(statuses.join(",")),
                        cost,
                    }
                }
                Err(e) => input_error(e),
            }
        }
        Query::Closure { base, lhs } => {
            let base = match RootedPath::parse(&base) {
                Ok(base) => base,
                Err(e) => {
                    return Reply {
                        response: Response::Err(format!("base: {e}")),
                        cost: 1,
                    }
                }
            };
            let lhs: Vec<Path> = match lhs
                .as_deref()
                .unwrap_or("")
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| Path::parse(s.trim()))
                .collect()
            {
                Ok(lhs) => lhs,
                Err(e) => {
                    return Reply {
                        response: Response::Err(format!("lhs: {e}")),
                        cost: 1,
                    }
                }
            };
            match session.closure(&base, &lhs) {
                Ok(closure) => Reply {
                    response: Response::Ok(
                        closure
                            .iter()
                            .map(RootedPath::to_string)
                            .collect::<Vec<_>>()
                            .join(" "),
                    ),
                    cost: 1,
                },
                Err(e) => input_error(e),
            }
        }
        Query::AddDep { dep } => {
            let nfd = match Nfd::parse(schema, &dep) {
                Ok(nfd) => nfd,
                Err(e) => return input_error(e),
            };
            match session.add_deps(std::slice::from_ref(&nfd)) {
                Ok(reports) => mutation_reply("added", &reports),
                Err(e) => input_error(e),
            }
        }
        Query::DropDep { dep } => {
            let nfd = match Nfd::parse(schema, &dep) {
                Ok(nfd) => nfd,
                Err(e) => return input_error(e),
            };
            match session.remove_deps(std::slice::from_ref(&nfd)) {
                Ok(reports) => mutation_reply("dropped", &reports),
                Err(e) => input_error(e),
            }
        }
        Query::Snapshot { path } => {
            let image = session.freeze();
            let bytes = nfd_snap::encode(&image);
            match nfd_snap::write_atomic(std::path::Path::new(&path), &bytes) {
                // Charged by image size: persisting a bigger compiled
                // session is more of the tenant's work made durable.
                Ok(()) => Reply {
                    response: Response::Ok(format!("snapshot bytes={} path={path}", bytes.len())),
                    cost: (bytes.len() as u64 / 1024).max(1),
                },
                Err(e) => Reply {
                    response: Response::Err(format!("snapshot: {e}")),
                    cost: 1,
                },
            }
        }
        Query::Keys { relation } => match session.candidate_keys(Label::new(&relation), 4) {
            Ok(keys) if keys.is_empty() => Reply {
                response: Response::Ok("(no candidate keys of size <= 4)".to_string()),
                cost: 1,
            },
            Ok(keys) => Reply {
                response: Response::Ok(
                    keys.iter()
                        .map(|k| {
                            format!(
                                "{{{}}}",
                                k.iter().map(Path::to_string).collect::<Vec<_>>().join(",")
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(" "),
                ),
                cost: 1,
            },
            Err(e) => input_error(e),
        },
    }
}

/// The wire form of a three-valued verdict.
fn verdict_response(verdict: &Verdict) -> Response {
    match verdict {
        Verdict::Implied => Response::Ok("implied".to_string()),
        Verdict::NotImplied => Response::Ok("not-implied".to_string()),
        Verdict::Exhausted(report) => Response::Exhausted(report.to_string()),
    }
}

/// The wire form of a Σ mutation, charged the rebuilt pool size: a
/// delta mutation replays the touched relation's saturation, so the
/// fresh pool length is the work the tenant actually bought.
fn mutation_reply(verb: &str, reports: &[nfd_core::DeltaReport]) -> Reply {
    let line: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "{verb} relation={} pool={}->{} overdeleted={}",
                r.relation, r.pool_before, r.pool_after, r.overdeleted
            )
        })
        .collect();
    let cost = reports
        .iter()
        .map(|r| r.pool_after as u64)
        .sum::<u64>()
        .max(1);
    Reply {
        response: Response::Ok(line.join("; ")),
        cost,
    }
}

/// Work units one decision costs its tenant: the largest decider
/// counter in the cascade log, floored at 1 so even cache hits meter.
fn decision_cost(decision: &crate::session::Decision) -> u64 {
    decision
        .attempts
        .iter()
        .filter_map(|a| a.cost)
        .max()
        .unwrap_or(0)
        .max(1)
}

fn input_error(e: CoreError) -> Reply {
    let response = core_error_response(e);
    Reply { response, cost: 1 }
}

fn core_error_response(e: CoreError) -> Response {
    match e {
        CoreError::Exhausted(report) => Response::Exhausted(report.to_string()),
        other => Response::Err(other.to_string()),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "unknown panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = "R : {<A: int, B: int, C: int>};";
    const DEPS: &str = "R:[A -> B]; R:[B -> C];";

    fn cmd(line: &str) -> Command {
        Command::parse(line).expect("test command parses")
    }

    fn load(reg: &Registry, name: &str) -> Response {
        reg.handle(cmd(&format!("LOAD {name} {SCHEMA} | {DEPS}")))
    }

    #[test]
    fn load_then_query_round_trip() {
        let reg = Registry::new(RegistryConfig::default());
        assert_eq!(load(&reg, "t"), Response::Ok("loaded deps=2".to_string()));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("BATCH t R:[A -> C]; R:[C -> A];")),
            Response::Ok("implied,not-implied".to_string())
        );
        let keys = reg.handle(cmd("KEYS t R"));
        assert!(
            matches!(&keys, Response::Ok(p) if p.contains("{A}")),
            "{keys:?}"
        );
        let closure = reg.handle(cmd("CLOSURE t R A"));
        assert!(
            matches!(&closure, Response::Ok(p) if p.contains("R:B") && p.contains("R:C")),
            "{closure:?}"
        );
        reg.on_shutdown();
    }

    #[test]
    fn unknown_tenant_and_bad_sources_answer_err() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(matches!(
            reg.handle(cmd("IMPLIES ghost R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(matches!(
            reg.handle(cmd("LOAD bad not-a-schema | whatever")),
            Response::Err(msg) if msg.starts_with("schema:")
        ));
        assert!(matches!(
            reg.handle(cmd(&format!("LOAD bad {SCHEMA} | not-deps"))),
            Response::Err(msg) if msg.starts_with("deps:")
        ));
        // A malformed goal against a healthy tenant: ERR, and the
        // session keeps answering.
        assert!(load(&reg, "t").is_ok());
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[Nope -> B]")),
            Response::Err(_)
        ));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Ok("implied".to_string())
        );
        reg.on_shutdown();
    }

    #[test]
    fn adddep_dropdep_mutate_the_resident_session() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        let resp = reg.handle(cmd("ADDDEP t R:[C -> A]"));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("added relation=R")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("implied".to_string())
        );
        let resp = reg.handle(cmd("DROPDEP t R:[C -> A]"));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("dropped relation=R")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        // Retracting an NFD that is not in Σ answers ERR and leaves the
        // warm session serving.
        assert!(matches!(
            reg.handle(cmd("DROPDEP t R:[C -> A]")),
            Response::Err(msg) if msg.contains("not in")
        ));
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        reg.on_shutdown();
    }

    #[test]
    fn mutations_are_charged_to_the_tenant_quota() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("QUOTA t 2")),
            Response::Ok("quota=2".to_string())
        );
        // The mutation costs the rebuilt pool size (>= 2 here), so the
        // quota drains to zero and the next workload verb is denied
        // before dispatch.
        assert!(reg.handle(cmd("ADDDEP t R:[C -> A]")).is_ok());
        assert!(matches!(
            reg.handle(cmd("ADDDEP t R:[B -> A]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        reg.on_shutdown();
    }

    #[test]
    fn quota_zero_denies_before_dispatch_and_is_recoverable() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("QUOTA t 0")),
            Response::Ok("quota=0".to_string())
        );
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        // Raising the quota restores service on the same warm session.
        assert_eq!(
            reg.handle(cmd("QUOTA t 100000")),
            Response::Ok("quota=100000".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Ok("implied".to_string())
        );
        assert!(reg.stats_line().contains("quota_denials=1"));
        reg.on_shutdown();
    }

    #[test]
    fn queries_deplete_a_metered_quota() {
        let reg = Registry::new(RegistryConfig {
            default_quota: Some(1),
            ..RegistryConfig::default()
        });
        assert!(load(&reg, "t").is_ok());
        // First query runs (cost ≥ 1 drains the single unit), second is
        // denied before dispatch. The first may itself exhaust its
        // quota-tightened budget — either way it is never an ERR.
        assert!(!matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Err(_)
        ));
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        reg.on_shutdown();
    }

    #[test]
    fn lru_eviction_under_resident_cap() {
        let reg = Registry::new(RegistryConfig {
            max_resident: 2,
            ..RegistryConfig::default()
        });
        assert!(load(&reg, "a").is_ok());
        assert!(load(&reg, "b").is_ok());
        // Touch `a` so `b` is the LRU when `c` arrives.
        assert!(reg.handle(cmd("IMPLIES a R:[A -> B]")).is_ok());
        assert!(load(&reg, "c").is_ok());
        assert!(matches!(
            reg.handle(cmd("IMPLIES b R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(reg.handle(cmd("IMPLIES a R:[A -> B]")).is_ok());
        assert!(reg.handle(cmd("IMPLIES c R:[A -> B]")).is_ok());
        let stats = reg.stats_line();
        assert!(stats.contains("evicted_lru=1"), "{stats}");
        assert!(
            stats.contains("resident=[c,a]") || stats.contains("resident=[a,c]"),
            "{stats}"
        );
        reg.on_shutdown();
    }

    #[test]
    fn evict_and_reload_lifecycle() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("EVICT t")),
            Response::Ok("evicted".to_string())
        );
        assert!(matches!(
            reg.handle(cmd("EVICT t")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(load(&reg, "t").is_ok());
        assert!(load(&reg, "t").is_ok(), "reload replaces in place");
        assert_eq!(
            reg.handle(cmd("IMPLIES t R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        let stats = reg.stats_line();
        assert!(stats.contains("reloads=1"), "{stats}");
        assert!(stats.contains("evicted=1"), "{stats}");
        reg.on_shutdown();
    }

    /// A scratch file path in the system temp dir, removed on drop.
    struct TempSnap(std::path::PathBuf);

    impl TempSnap {
        fn new(tag: &str) -> TempSnap {
            TempSnap(
                std::env::temp_dir().join(format!("nfd-serve-{tag}-{}.snap", std::process::id())),
            )
        }

        fn as_str(&self) -> String {
            self.0.to_string_lossy().into_owned()
        }
    }

    impl Drop for TempSnap {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn snapshot_then_restore_round_trips_a_tenant() {
        let file = TempSnap::new("roundtrip");
        let path = file.as_str();
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        let resp = reg.handle(cmd(&format!("SNAPSHOT t {path}")));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.starts_with("snapshot bytes=")),
            "{resp:?}"
        );
        // Evict, then resurrect from disk under a new name: the thawed
        // session answers exactly like the compiled one did.
        assert!(reg.handle(cmd("EVICT t")).is_ok());
        let resp = reg.handle(cmd(&format!("RESTORE warm {path}")));
        assert_eq!(resp, Response::Ok("restored deps=2 (thawed)".to_string()));
        assert_eq!(
            reg.handle(cmd("IMPLIES warm R:[A -> C]")),
            Response::Ok("implied".to_string())
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES warm R:[C -> A]")),
            Response::Ok("not-implied".to_string())
        );
        // Mutations work on the thawed session too.
        assert!(reg.handle(cmd("ADDDEP warm R:[C -> A]")).is_ok());
        assert_eq!(
            reg.handle(cmd("IMPLIES warm R:[C -> A]")),
            Response::Ok("implied".to_string())
        );
        let stats = reg.stats_line();
        assert!(stats.contains("snapshots_written=1"), "{stats}");
        assert!(stats.contains("restores_ok=1"), "{stats}");
        assert!(stats.contains("restores_rejected=0"), "{stats}");
        assert!(stats.contains("thaw_fallbacks=0"), "{stats}");
        reg.on_shutdown();
    }

    #[test]
    fn corrupt_restore_falls_back_or_rejects_with_typed_reason() {
        let file = TempSnap::new("corrupt");
        let path = file.as_str();
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "t").is_ok());
        assert!(reg.handle(cmd(&format!("SNAPSHOT t {path}"))).is_ok());

        // Corrupt a compiled section (late in the file): the sources
        // salvage, so RESTORE degrades to a fresh compile and the
        // session still answers correctly.
        let pristine = std::fs::read(&file.0).unwrap();
        let mut bytes = pristine.clone();
        let late = bytes.len() - 9;
        bytes[late] ^= 0xFF;
        std::fs::write(&file.0, &bytes).unwrap();
        let resp = reg.handle(cmd(&format!("RESTORE hurt {path}")));
        assert!(
            matches!(&resp, Response::Ok(msg) if msg.contains("compiled fresh")),
            "{resp:?}"
        );
        assert_eq!(
            reg.handle(cmd("IMPLIES hurt R:[A -> C]")),
            Response::Ok("implied".to_string())
        );

        // Destroy the header: nothing salvages, RESTORE answers ERR and
        // no tenant appears.
        std::fs::write(&file.0, b"garbage").unwrap();
        let resp = reg.handle(cmd(&format!("RESTORE dead {path}")));
        assert!(
            matches!(&resp, Response::Err(msg) if msg.starts_with("restore:")),
            "{resp:?}"
        );
        assert!(matches!(
            reg.handle(cmd("IMPLIES dead R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));

        // A missing file is the same typed rejection.
        let resp = reg.handle(cmd("RESTORE ghost /nonexistent/nope.snap"));
        assert!(
            matches!(&resp, Response::Err(msg) if msg.starts_with("restore:")),
            "{resp:?}"
        );
        let stats = reg.stats_line();
        assert!(stats.contains("thaw_fallbacks=1"), "{stats}");
        assert!(stats.contains("restores_rejected=2"), "{stats}");
        reg.on_shutdown();
    }

    #[test]
    fn snapshot_is_quota_charged_and_unknown_tenant_rejected() {
        let file = TempSnap::new("quota");
        let path = file.as_str();
        let reg = Registry::new(RegistryConfig::default());
        assert!(matches!(
            reg.handle(cmd(&format!("SNAPSHOT ghost {path}"))),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
        assert!(load(&reg, "t").is_ok());
        assert_eq!(
            reg.handle(cmd("QUOTA t 1")),
            Response::Ok("quota=1".to_string())
        );
        // The snapshot drains the single unit; the next workload verb is
        // denied before dispatch.
        assert!(reg.handle(cmd(&format!("SNAPSHOT t {path}"))).is_ok());
        assert!(matches!(
            reg.handle(cmd("IMPLIES t R:[A -> B]")),
            Response::Exhausted(msg) if msg.contains("quota")
        ));
        reg.on_shutdown();
    }

    #[test]
    fn shutdown_drains_every_actor() {
        let reg = Registry::new(RegistryConfig::default());
        assert!(load(&reg, "a").is_ok());
        assert!(load(&reg, "b").is_ok());
        reg.on_shutdown();
        assert!(reg.stats_line().contains("sessions=0"));
        assert!(matches!(
            reg.handle(cmd("IMPLIES a R:[A -> B]")),
            Response::Err(msg) if msg.contains("unknown tenant")
        ));
    }
}
