//! # nfd — Reasoning about Nested Functional Dependencies
//!
//! A complete Rust implementation of Hara & Davidson, *"Reasoning about
//! Nested Functional Dependencies"* (PODS 1999): the nested relational
//! model, NFDs with path expressions, their logic translation, the sound
//! and complete eight-rule axiomatization with a saturation-based
//! implication engine and replayable proofs, the Appendix A
//! counterexample construction, the empty-set rule variants of
//! Section 3.2, a classical-FD baseline, and a nested tableau chase.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`govern`] | resource budgets, cancellation tokens, three-valued verdicts |
//! | [`par`] | zero-dependency scoped worker pool for batch workloads |
//! | [`model`] | types, values, schemas, instances, parsing, rendering, generation |
//! | [`path`] | path expressions, typing, prefix/follows, navigation |
//! | [`logic`] | Section 2.2 translation to first-order logic + evaluator |
//! | [`core`] | NFDs, satisfaction, rules, engine, proofs, closure, construction |
//! | [`relational`] | Armstrong's axioms / attribute closure baseline |
//! | [`chase`] | nested tableau chase (the paper's future work) |
//! | [`net`] | crash-contained TCP serving shell (line protocol, admission, drain) |
//! | [`snap`] | crash-safe checksummed snapshots of compiled sessions |
//!
//! The [`serve`] module (this crate, not a re-export) implements the
//! multi-tenant session [`serve::Registry`] behind `nfdtool serve`, and
//! the [`snapshot`] module converts between live sessions and the
//! portable [`snap`] representation ([`session::Session::freeze`] /
//! [`session::Session::thaw`]).
//!
//! ## Quickstart
//!
//! ```
//! use nfd::prelude::*;
//!
//! let schema = Schema::parse(
//!     "Course : { <cnum: string, time: int,
//!                  students: {<sid: int, age: int, grade: string>},
//!                  books: {<isbn: string, title: string>}> };").unwrap();
//!
//! // The five constraints from the paper's introduction.
//! let sigma = nfd::core::nfd::parse_set(&schema, "
//!     Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
//!     Course:[books:isbn -> books:title];
//!     Course:students:[sid -> grade];
//!     Course:[students:sid -> students:age];
//!     Course:[time, students:sid -> cnum];
//! ").unwrap();
//!
//! // Compile once, query forever: the paper's motivating question —
//! // do sid and time determine books?
//! let session = Session::new(&schema, &sigma).unwrap();
//! assert!(session.implies_text("Course:[time, students:sid -> books]").unwrap());
//! assert!(!session.implies_text("Course:[time -> cnum]").unwrap());
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod serve;
pub mod session;
pub mod snapshot;

pub use nfd_chase as chase;
pub use nfd_core as core;
pub use nfd_faults as faults;
pub use nfd_govern as govern;
pub use nfd_logic as logic;
pub use nfd_model as model;
pub use nfd_par as par;
pub use nfd_path as path;
pub use nfd_relational as relational;
pub use nfd_serve as net;
pub use nfd_snap as snap;

/// The most commonly used items, for `use nfd::prelude::*`.
pub mod prelude {
    pub use crate::serve::{Registry, RegistryConfig};
    pub use crate::session::{
        Attempt, AttemptOutcome, BatchDecision, Chase, Decider, Decision, LogicEval, RetryPolicy,
        Saturation, Session,
    };
    pub use nfd_core::engine::Engine;
    pub use nfd_core::{check, CoreError, EmptySetPolicy, Nfd, SatisfyReport, Violation};
    pub use nfd_govern::{Budget, CancelToken, ResourceKind, ResourceReport, Verdict};
    pub use nfd_model::{Instance, Label, Schema, Type, Value};
    pub use nfd_path::{Path, RootedPath};
    pub use nfd_serve::{Command, Handler, Response, Server, ServerConfig, ServerStats};
}
