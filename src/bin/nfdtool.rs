//! `nfdtool` — command-line access to the NFD library. See `nfd::cli`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let code = nfd::cli::run(&args, &mut out);
    print!("{out}");
    std::process::exit(code);
}
