//! Conversions between live compiled sessions and the portable
//! [`nfd_snap::Snapshot`] representation.
//!
//! The `nfd-snap` crate owns the bytes (format, checksums, atomic I/O)
//! and deliberately knows nothing about engines; this module owns the
//! meaning. Freezing dumps the compiled state — schema and Σ source
//! texts, the empty-set policy, every relation's interned path-table
//! matrices, the saturated pools with provenance, and the warm closure
//! cache. Thawing is *verified reinstallation*:
//!
//! 1. the embedded schema/Σ/policy texts must equal the caller's
//!    (rendered through the same `Display` impls they were frozen with);
//! 2. the path tables are recompiled from the schema and required to be
//!    bit-identical to the embedded matrices — any skew (a schema edit,
//!    an interning change) is a typed [`SnapError::Mismatch`];
//! 3. the pools replay through the engine's own `add` path
//!    ([`nfd_core::engine::Engine::from_frozen`]), which re-derives
//!    subsumption flags and policy gates and rejects any entry the
//!    original build would have rejected;
//! 4. cache entries are range-checked against the tables before import.
//!
//! A snapshot can therefore never produce a session that answers
//! differently from a fresh compile — the differential suite
//! (`tests/snapshot_differential.rs`) proves bit-identity, and the
//! corruption sweep (`tests/snapshot_corruption.rs`) proves damaged
//! bytes are rejected, never misread.

use nfd_core::engine::{Engine, FrozenDep, FrozenPool, Prov};
use nfd_core::{ClosureCache, EmptySetPolicy, Nfd};
use nfd_model::{Label, Schema};
use nfd_path::table::{PathId, PathSet, PathTable, SchemaTables};
use nfd_path::RootedPath;
use nfd_snap::{
    CacheEntrySnap, DepSnap, PolicySnap, PoolSnap, ProvSnap, SnapError, Snapshot, TableSnap,
};
use std::collections::HashMap;

/// Renders Σ in the canonical snapshot form: one `Display`-rendered NFD
/// per line, each terminated by `;`. Round-trips through
/// [`nfd_core::nfd::parse_set`].
pub fn render_sigma(sigma: &[Nfd]) -> String {
    sigma
        .iter()
        .map(|n| format!("{n};"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The portable form of an empty-set policy: `Forbidden`, or the sorted
/// rendered rooted paths declared non-empty.
pub fn policy_snap(policy: &EmptySetPolicy) -> PolicySnap {
    match policy {
        EmptySetPolicy::Forbidden => PolicySnap::Forbidden,
        EmptySetPolicy::Annotated(paths) => {
            let mut rendered: Vec<String> = paths.iter().map(|p| p.to_string()).collect();
            rendered.sort();
            PolicySnap::Annotated(rendered)
        }
    }
}

/// Parses a portable policy back to a live [`EmptySetPolicy`].
pub fn policy_from_snap(snap: &PolicySnap) -> Result<EmptySetPolicy, SnapError> {
    match snap {
        PolicySnap::Forbidden => Ok(EmptySetPolicy::Forbidden),
        PolicySnap::Annotated(rendered) => {
            let mut paths = Vec::with_capacity(rendered.len());
            for text in rendered {
                paths.push(RootedPath::parse(text).map_err(|e| {
                    SnapError::Malformed(format!("policy path `{text}` does not parse: {e}"))
                })?);
            }
            Ok(EmptySetPolicy::non_empty(paths))
        }
    }
}

/// `None` encoded as `u32::MAX` in [`TableSnap::parents`].
const NO_PARENT: u32 = u32::MAX;

/// Dumps one relation's compiled path table verbatim.
fn table_snap(table: &PathTable) -> TableSnap {
    let n = table.len() as PathId;
    TableSnap {
        relation: table.relation().to_string(),
        words: table.words() as u64,
        paths: table.paths().iter().map(|p| p.to_string()).collect(),
        parents: (0..n)
            .map(|id| table.parent(id).unwrap_or(NO_PARENT))
            .collect(),
        set_record: (0..n).map(|id| table.is_set_record(id)).collect(),
        prefixes: (0..n)
            .map(|id| table.prefixes_of(id).as_words().to_vec())
            .collect(),
        extensions: (0..n)
            .map(|id| table.extensions_of(id).as_words().to_vec())
            .collect(),
        followers: (0..n)
            .map(|id| table.followers_of(id).as_words().to_vec())
            .collect(),
    }
}

/// Dumps every table, sorted by relation text (deterministic bytes).
fn tables_snap(tables: &SchemaTables) -> Vec<TableSnap> {
    let mut out: Vec<TableSnap> = tables.iter().map(|(_, t)| table_snap(t)).collect();
    out.sort_by(|a, b| a.relation.cmp(&b.relation));
    out
}

/// Verifies that freshly compiled tables are bit-identical to the
/// embedded dumps — the skew check that catches schema edits and
/// interning changes between freeze and thaw.
pub(crate) fn verify_tables(tables: &SchemaTables, snaps: &[TableSnap]) -> Result<(), SnapError> {
    let fresh = tables_snap(tables);
    if fresh.len() != snaps.len() {
        return Err(SnapError::Mismatch(format!(
            "snapshot has {} path table(s), the schema compiles to {}",
            snaps.len(),
            fresh.len()
        )));
    }
    for (f, s) in fresh.iter().zip(snaps) {
        if f != s {
            return Err(SnapError::Mismatch(format!(
                "path table of relation `{}` differs from the snapshot's",
                s.relation
            )));
        }
    }
    Ok(())
}

fn prov_snap(prov: &Prov) -> ProvSnap {
    match prov {
        Prov::Given(i) => ProvSnap::Given(*i as u64),
        Prov::Prefix { dep, shortened } => ProvSnap::Prefix {
            dep: *dep as u64,
            shortened: *shortened,
        },
        Prov::FullLocality { dep, x } => ProvSnap::FullLocality {
            dep: *dep as u64,
            x: *x,
        },
        Prov::Resolve {
            target,
            supplier,
            on,
        } => ProvSnap::Resolve {
            target: *target as u64,
            supplier: *supplier as u64,
            on: *on,
        },
        Prov::Singleton { x } => ProvSnap::Singleton { x: *x },
    }
}

fn prov_from_snap(snap: &ProvSnap) -> Prov {
    match snap {
        ProvSnap::Given(i) => Prov::Given(*i as usize),
        ProvSnap::Prefix { dep, shortened } => Prov::Prefix {
            dep: *dep as usize,
            shortened: *shortened,
        },
        ProvSnap::FullLocality { dep, x } => Prov::FullLocality {
            dep: *dep as usize,
            x: *x,
        },
        ProvSnap::Resolve {
            target,
            supplier,
            on,
        } => Prov::Resolve {
            target: *target as usize,
            supplier: *supplier as usize,
            on: *on,
        },
        ProvSnap::Singleton { x } => Prov::Singleton { x: *x },
    }
}

/// Freezes a compiled engine (plus its warm closure cache) into the
/// portable snapshot form. Pure export — deterministic for a given
/// compiled state, and the relation/cache orderings are sorted so the
/// encoded bytes are reproducible.
pub(crate) fn freeze_parts(schema: &Schema, engine: &Engine<'_>, cache: &ClosureCache) -> Snapshot {
    let pools = engine
        .export_pools()
        .into_iter()
        .map(|p| PoolSnap {
            relation: p.relation.to_string(),
            deps: p
                .deps
                .iter()
                .map(|d| DepSnap {
                    lhs: d.lhs.as_words().to_vec(),
                    rhs: d.rhs,
                    prov: prov_snap(&d.prov),
                    subsumed: d.subsumed,
                })
                .collect(),
            singletons: p.singletons.clone(),
        })
        .collect();
    let cache_entries = cache
        .export()
        .into_iter()
        .map(|(relation, key, closure)| CacheEntrySnap {
            relation: relation.to_string(),
            key: key.as_words().to_vec(),
            closure: closure.as_words().to_vec(),
        })
        .collect();
    Snapshot {
        schema_text: schema.to_string(),
        sigma_text: render_sigma(&engine.sigma),
        policy: policy_snap(engine.policy()),
        tables: tables_snap(engine.tables()),
        pools,
        cache: cache_entries,
    }
}

/// A `relation text → Label` index over the schema's relations.
fn label_index(schema: &Schema) -> HashMap<String, Label> {
    schema
        .relation_names()
        .map(|l| (l.to_string(), l))
        .collect()
}

/// Converts the snapshot's pools back to the engine's frozen form,
/// resolving relation names and rebuilding the LHS bitsets. Id-range and
/// width validation happens inside `Engine::from_frozen`; this layer
/// rejects unknown relations.
pub(crate) fn frozen_pools(
    snapshot: &Snapshot,
    schema: &Schema,
) -> Result<Vec<FrozenPool>, SnapError> {
    let labels = label_index(schema);
    let mut out = Vec::with_capacity(snapshot.pools.len());
    for pool in &snapshot.pools {
        let relation = *labels.get(&pool.relation).ok_or_else(|| {
            SnapError::Mismatch(format!(
                "snapshot pool names relation `{}` which the schema does not define",
                pool.relation
            ))
        })?;
        out.push(FrozenPool {
            relation,
            deps: pool
                .deps
                .iter()
                .map(|d| FrozenDep {
                    lhs: PathSet::from_words(d.lhs.clone()),
                    rhs: d.rhs,
                    prov: prov_from_snap(&d.prov),
                    subsumed: d.subsumed,
                })
                .collect(),
            singletons: pool.singletons.clone(),
        });
    }
    Ok(out)
}

/// Converts and range-checks the snapshot's closure-cache entries for
/// import into a live cache. Every entry must name a known relation and
/// carry bitsets of the relation's exact word width with ids inside the
/// table — anything else is a typed mismatch, not a tolerated oddity.
pub(crate) fn cache_entries(
    snapshot: &Snapshot,
    schema: &Schema,
    tables: &SchemaTables,
) -> Result<Vec<(Label, PathSet, PathSet)>, SnapError> {
    let labels = label_index(schema);
    let mut out = Vec::with_capacity(snapshot.cache.len());
    for entry in &snapshot.cache {
        let relation = *labels.get(&entry.relation).ok_or_else(|| {
            SnapError::Mismatch(format!(
                "snapshot cache entry names unknown relation `{}`",
                entry.relation
            ))
        })?;
        let table = tables.get(relation).ok_or_else(|| {
            SnapError::Mismatch(format!(
                "no compiled table for relation `{}`",
                entry.relation
            ))
        })?;
        let len = table.len() as PathId;
        let words = table.words();
        if entry.key.len() != words || entry.closure.len() != words {
            return Err(SnapError::Mismatch(format!(
                "cache entry for `{}` has the wrong bitset width",
                entry.relation
            )));
        }
        let key = PathSet::from_words(entry.key.clone());
        let closure = PathSet::from_words(entry.closure.clone());
        if key.iter().any(|id| id >= len) || closure.iter().any(|id| id >= len) {
            return Err(SnapError::Mismatch(format!(
                "cache entry for `{}` has path ids outside the table",
                entry.relation
            )));
        }
        out.push((relation, key, closure));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_round_trips_through_portable_form() {
        let forbidden = EmptySetPolicy::Forbidden;
        assert_eq!(
            policy_from_snap(&policy_snap(&forbidden)).unwrap(),
            forbidden
        );
        let annotated = EmptySetPolicy::non_empty([
            RootedPath::parse("R:B").unwrap(),
            RootedPath::parse("R:A").unwrap(),
        ]);
        let snap = policy_snap(&annotated);
        assert_eq!(
            snap,
            PolicySnap::Annotated(vec!["R:A".to_string(), "R:B".to_string()])
        );
        assert_eq!(policy_from_snap(&snap).unwrap(), annotated);
    }

    #[test]
    fn bad_policy_paths_are_typed_errors() {
        let snap = PolicySnap::Annotated(vec!["not a path !!".to_string()]);
        assert!(matches!(
            policy_from_snap(&snap),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn table_verification_catches_schema_skew() {
        let schema = Schema::parse("R : {<A: int, B: int>};").unwrap();
        let other = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
        let tables = SchemaTables::new(&schema).unwrap();
        let snaps = tables_snap(&tables);
        assert!(verify_tables(&tables, &snaps).is_ok());
        let other_tables = SchemaTables::new(&other).unwrap();
        assert!(matches!(
            verify_tables(&other_tables, &snaps),
            Err(SnapError::Mismatch(_))
        ));
    }
}
