//! The `nfdtool` command-line interface.
//!
//! A thin, dependency-free front end over the library: schemas,
//! dependency sets and instances are read from files in the textual
//! syntaxes of [`nfd_model::parse`] and [`nfd_core::nfd`], and each
//! subcommand maps to one library entry point.
//!
//! ```text
//! nfdtool check    --schema S --deps D --instance I    # I ⊨ Σ? (witnesses)
//! nfdtool implies  --schema S --deps D "R:[A -> B]"    # Σ ⊨ σ?
//! nfdtool implies  --schema S --deps D --goals G       # batch: one session, many σ
//! nfdtool prove    --schema S --deps D "R:[A -> B]"    # derivation certificate
//! nfdtool closure  --schema S --deps D --base R:A --lhs B:C,D
//! nfdtool witness  --schema S --deps D --base R --lhs A   # Appendix A instance
//! nfdtool keys     --schema S --deps D --relation R
//! nfdtool analyze  --schema S --deps D            # singletons, redundancy, minimal cover
//! nfdtool render   --schema S --instance I        # nested tables
//! nfdtool snapshot --schema S --deps D --out F    # freeze the compiled session
//! nfdtool serve    --addr HOST:PORT               # multi-tenant registry daemon
//! ```
//!
//! The `implies`, `prove`, `closure` and `keys` subcommands are served by
//! one compiled [`Session`]; batch mode (`--goals`) amortizes that
//! compilation over every goal in the file, and `--snapshot FILE` warm
//! starts the session from a [`crate::snap`] image written by
//! `nfdtool snapshot` (falling back to a fresh compile when the image is
//! corrupt or stale).
//!
//! The entry point [`run`] writes to the supplied sink and returns a
//! process exit code, so the whole CLI is unit-testable.

use crate::session::{AttemptOutcome, RetryPolicy, Session};
use nfd_core::engine::Engine;
use nfd_core::{analysis, construct, nfd::parse_set, satisfy, CoreError, Nfd, TierPreference};
use nfd_govern::Budget;
use nfd_model::{render, Instance, Schema};
use nfd_path::{Path, RootedPath};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A dispatch failure, distinguishing bad input from exhausted budgets so
/// callers (and scripts) can tell them apart by exit code.
enum CliFail {
    /// Usage or input error → exit 2, with the usage text.
    Usage(String),
    /// A resource budget/deadline ran out → exit 3.
    Exhausted(String),
    /// A contained internal failure (e.g. a decision-procedure panic the
    /// library caught and reported as `CoreError::Internal`) → exit 101.
    /// Not a usage problem, so no usage text.
    Internal(String),
}

impl From<String> for CliFail {
    fn from(msg: String) -> CliFail {
        CliFail::Usage(msg)
    }
}

impl From<&str> for CliFail {
    fn from(msg: &str) -> CliFail {
        CliFail::Usage(msg.to_string())
    }
}

/// Maps a library error: budget exhaustion keeps its identity, everything
/// else is an input/usage failure.
fn core_fail(e: CoreError) -> CliFail {
    match e {
        CoreError::Exhausted(r) => CliFail::Exhausted(r.to_string()),
        CoreError::Internal(msg) => CliFail::Internal(msg),
        other => CliFail::Usage(other.to_string()),
    }
}

/// Runs the CLI with the given arguments (excluding the program name),
/// writing human-readable output to `out`. Returns the exit code:
/// `0` success / property holds, `1` property fails (violation found or
/// not implied), `2` usage or input error, `3` resource budget or
/// deadline exhausted before a verdict, `101` contained internal panic.
pub fn run(args: &[String], out: &mut String) -> i32 {
    let mut inner = String::new();
    let code = match catch_unwind(AssertUnwindSafe(|| dispatch(args, &mut inner))) {
        Ok(Ok(code)) => code,
        Ok(Err(CliFail::Usage(msg))) => {
            let _ = writeln!(inner, "error: {msg}");
            let _ = writeln!(inner, "{USAGE}");
            2
        }
        Ok(Err(CliFail::Exhausted(msg))) => {
            let _ = writeln!(inner, "exhausted: {msg}");
            3
        }
        Ok(Err(CliFail::Internal(msg))) => {
            let _ = writeln!(inner, "internal error: {msg}");
            101
        }
        Err(_) => {
            let _ = writeln!(inner, "internal error: a decision procedure panicked");
            101
        }
    };
    out.push_str(&inner);
    code
}

const USAGE: &str = "usage:
  nfdtool check    --schema FILE --deps FILE --instance FILE
  nfdtool implies  --schema FILE --deps FILE [--policy P] [--budget N] [--timeout-ms T] [--retry N [--escalate F]] [--engine E] [--snapshot FILE [--thaw-min-bytes N]] [--add-dep NFD]… [--drop-dep NFD]… NFD
  nfdtool implies  --schema FILE --deps FILE [--policy P] [--budget N] [--timeout-ms T] [--threads N] [--retry N [--escalate F]] [--engine E] [--snapshot FILE] [--add-dep NFD]… [--drop-dep NFD]… --goals FILE
  nfdtool prove    --schema FILE --deps FILE [--policy P] [--budget N] [--timeout-ms T] [--engine E] [--snapshot FILE] [--add-dep NFD]… [--drop-dep NFD]… NFD
  nfdtool closure  --schema FILE --deps FILE [--policy P] [--budget N] [--timeout-ms T] [--engine E] [--snapshot FILE] [--add-dep NFD]… [--drop-dep NFD]… --base PATH [--lhs P1,P2,…]
  nfdtool witness  --schema FILE --deps FILE --base PATH [--lhs P1,P2,…]
  nfdtool keys     --schema FILE --deps FILE --relation NAME [--budget N] [--timeout-ms T] [--threads N] [--engine E] [--snapshot FILE] [--add-dep NFD]… [--drop-dep NFD]…
  nfdtool analyze  --schema FILE --deps FILE
  nfdtool render   --schema FILE --instance FILE
  nfdtool snapshot --schema FILE --deps FILE [--policy P] [--budget N] [--timeout-ms T] [--engine E] [--add-dep NFD]… [--drop-dep NFD]… --out FILE
  nfdtool serve    --addr HOST:PORT [--max-resident N] [--max-inflight N] [--queue N] [--quota N] [--budget N] [--timeout-ms T] [--workers N]

  --goals FILE decides every NFD of the (semicolon-separated) file against
  one compiled session; exit 0 iff all goals are implied.

  --policy P controls empty-set reasoning (Section 3.2 of the paper):
     strict            no instance contains an empty set (default; Theorem 3.1)
     pessimistic       empty sets anywhere; only `follows`-safe inferences
     nonempty:R:A,R:B  like pessimistic, with the listed set paths declared
                       non-empty (the paper's NON-NULL analogue)

  --budget N caps every work counter (derived dependencies, chase steps &
  nulls, assignment enumerations, key candidates) at N; --timeout-ms T adds
  a wall-clock deadline. With neither flag generous defaults apply. An
  exhausted budget is an honest \"don't know\", never a wrong verdict; for
  `implies` the tool falls back saturation -> chase -> logic-eval before
  giving up.

  --threads N shards batch implication (--goals) and the candidate-key
  search across N worker threads sharing one budget; 0 or omitted uses all
  available parallelism. Results are identical at every thread count.

  --retry N re-runs a goal up to N more times when it exhausts the budget,
  multiplying every limit (and re-arming any timeout) by the --escalate
  factor (default 4) before each run — graceful degradation instead of a
  terminal \"don't know\". The printed attempt log records every run.

  --add-dep / --drop-dep mutate the dependency set after the session
  compiles (every --add-dep in flag order, then every --drop-dep; a
  dropped NFD must be present). Each mutation re-saturates only the
  relation it names — incremental delta maintenance, bit-identical to
  recompiling from the mutated --deps file — so queries after the flags
  see exactly the mutated Σ.

  --engine E picks the closure-query engine tier: `auto` (the default —
  a cost model routes each query between the naive scan and the indexed
  kernel, and promotes repeatedly-queried relations to a precomputed
  dense tier), or a forced `naive`, `indexed` or `dense`. Every tier
  returns bit-identical verdicts; the flag exists for debugging and
  differential testing, and giving it makes the tool report which tier
  served each query. A forced `dense` charges the closure-matrix build
  to the budget and reports exhaustion honestly instead of falling back.

  snapshot compiles the session and writes it — interned path tables,
  the saturated Σ pool with full provenance, the empty-set policy and
  the warm closure cache — to --out as a length-prefixed, per-section
  CRC-checksummed binary image, atomically (temp file, flush, rename).
  The other session subcommands accept --snapshot FILE to warm-start
  from such an image: a valid image matching the --schema/--deps/--policy
  on the command line skips the saturation fixpoint entirely, while a
  corrupt, truncated or mismatched one is rejected with a typed reason
  and the tool transparently compiles fresh. Degraded startup is a
  logged event, never a failure and never a wrong answer; --add-dep /
  --drop-dep mutations apply after the thaw exactly as after a compile.
  Images smaller than --thaw-min-bytes (default 16384) compile fresh
  without decoding: tiny sessions compile faster than they thaw (B17),
  so the warm start only engages where it wins. 0 disables the floor.

  serve runs the crash-contained multi-tenant registry daemon: named
  schemas stay resident as compiled sessions behind a line protocol
  (LOAD/IMPLIES/BATCH/CLOSURE/KEYS/SNAPSHOT/RESTORE/QUOTA/EVICT/STATS/
  PING/SHUTDOWN; see
  the README). --max-resident caps warm sessions (LRU eviction, default
  8); --max-inflight and --queue bound admission (overflow answers BUSY);
  --quota meters each tenant's work units (EXHAUSTED when drained);
  --budget caps per-query counters and --timeout-ms (default 30000) is
  the per-request deadline. --workers N runs N concurrent read workers
  per resident tenant (IMPLIES/BATCH/CLOSURE/KEYS execute in parallel
  against the compiled session; ADDDEP/DROPDEP build the next epoch
  aside and atomically swap it in, never blocking readers); 1 forces
  the sequential reference mode, 0 or omitted uses all available
  cores. Exits 0 on a clean SHUTDOWN drain.

  exit codes: 0 holds/implied · 1 fails/not implied · 2 usage or input
  error · 3 budget or deadline exhausted · 101 contained internal panic";

struct Opts {
    schema: Option<String>,
    deps: Option<String>,
    instance: Option<String>,
    base: Option<String>,
    lhs: Option<String>,
    relation: Option<String>,
    policy: Option<String>,
    goals: Option<String>,
    budget: Option<String>,
    timeout_ms: Option<String>,
    threads: Option<String>,
    retry: Option<String>,
    escalate: Option<String>,
    engine: Option<String>,
    addr: Option<String>,
    max_resident: Option<String>,
    max_inflight: Option<String>,
    queue: Option<String>,
    quota: Option<String>,
    /// Repeatable `--add-dep NFD`: dependencies added to Σ after the
    /// session compiles, via incremental delta saturation.
    add_dep: Vec<String>,
    /// Repeatable `--drop-dep NFD`: dependencies retracted from Σ after
    /// the session compiles (and after every `--add-dep`).
    drop_dep: Vec<String>,
    /// `--snapshot FILE`: warm-start the session from a frozen image,
    /// falling back to a fresh compile when the image is rejected.
    snapshot: Option<String>,
    /// `--thaw-min-bytes N`: image-size floor below which `--snapshot`
    /// compiles fresh instead of thawing (`0` disables the gate).
    thaw_min_bytes: Option<String>,
    /// `--workers N`: per-tenant concurrent read workers in `serve`.
    workers: Option<String>,
    /// `--out FILE`: where the `snapshot` subcommand writes its image.
    out: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        schema: None,
        deps: None,
        instance: None,
        base: None,
        lhs: None,
        relation: None,
        policy: None,
        goals: None,
        budget: None,
        timeout_ms: None,
        threads: None,
        retry: None,
        escalate: None,
        engine: None,
        addr: None,
        max_resident: None,
        max_inflight: None,
        queue: None,
        quota: None,
        add_dep: Vec::new(),
        drop_dep: Vec::new(),
        snapshot: None,
        thaw_min_bytes: None,
        workers: None,
        out: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag `{}` needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--schema" => o.schema = Some(take(&mut i)?),
            "--deps" => o.deps = Some(take(&mut i)?),
            "--instance" => o.instance = Some(take(&mut i)?),
            "--base" => o.base = Some(take(&mut i)?),
            "--lhs" => o.lhs = Some(take(&mut i)?),
            "--relation" => o.relation = Some(take(&mut i)?),
            "--policy" => o.policy = Some(take(&mut i)?),
            "--goals" => o.goals = Some(take(&mut i)?),
            "--budget" => o.budget = Some(take(&mut i)?),
            "--timeout-ms" => o.timeout_ms = Some(take(&mut i)?),
            "--threads" => o.threads = Some(take(&mut i)?),
            "--retry" => o.retry = Some(take(&mut i)?),
            "--escalate" => o.escalate = Some(take(&mut i)?),
            "--engine" => o.engine = Some(take(&mut i)?),
            "--addr" => o.addr = Some(take(&mut i)?),
            "--max-resident" => o.max_resident = Some(take(&mut i)?),
            "--max-inflight" => o.max_inflight = Some(take(&mut i)?),
            "--queue" => o.queue = Some(take(&mut i)?),
            "--quota" => o.quota = Some(take(&mut i)?),
            "--add-dep" => o.add_dep.push(take(&mut i)?),
            "--drop-dep" => o.drop_dep.push(take(&mut i)?),
            "--snapshot" => o.snapshot = Some(take(&mut i)?),
            "--thaw-min-bytes" => o.thaw_min_bytes = Some(take(&mut i)?),
            "--workers" => o.workers = Some(take(&mut i)?),
            "--out" => o.out = Some(take(&mut i)?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => o.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(o)
}

fn read(path: &str, what: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {what} file `{path}`: {e}"))
}

fn load_schema(o: &Opts) -> Result<Schema, String> {
    let path = o.schema.as_deref().ok_or("--schema is required")?;
    Schema::parse(&read(path, "schema")?).map_err(|e| format!("schema: {e}"))
}

fn load_deps(o: &Opts, schema: &Schema) -> Result<Vec<Nfd>, String> {
    let path = o.deps.as_deref().ok_or("--deps is required")?;
    parse_set(schema, &read(path, "dependencies")?).map_err(|e| format!("dependencies: {e}"))
}

fn load_instance(o: &Opts, schema: &Schema) -> Result<Instance, String> {
    let path = o.instance.as_deref().ok_or("--instance is required")?;
    Instance::parse(schema, &read(path, "instance")?).map_err(|e| format!("instance: {e}"))
}

fn parse_lhs(o: &Opts) -> Result<Vec<Path>, String> {
    match &o.lhs {
        None => Ok(Vec::new()),
        Some(text) => text
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| Path::parse(s).map_err(|e| format!("--lhs: {e}")))
            .collect(),
    }
}

fn parse_policy(o: &Opts) -> Result<nfd_core::EmptySetPolicy, String> {
    match o.policy.as_deref() {
        None | Some("strict") => Ok(nfd_core::EmptySetPolicy::Forbidden),
        Some("pessimistic") => Ok(nfd_core::EmptySetPolicy::pessimistic()),
        Some(spec) if spec.starts_with("nonempty:") => {
            let paths: Result<Vec<RootedPath>, String> = spec["nonempty:".len()..]
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| RootedPath::parse(s.trim()).map_err(|e| format!("--policy: {e}")))
                .collect();
            Ok(nfd_core::EmptySetPolicy::non_empty(paths?))
        }
        Some(other) => Err(format!(
            "--policy must be `strict`, `pessimistic` or `nonempty:R:A,…`, got `{other}`"
        )),
    }
}

/// Builds the [`Budget`] requested by `--budget` / `--timeout-ms`. With
/// neither flag the standard budget applies (generous counter ceilings,
/// no deadline) — exactly the pre-governance behaviour.
fn parse_budget(o: &Opts) -> Result<Budget, String> {
    let mut budget = match o.budget.as_deref() {
        None => Budget::standard(),
        Some(text) => {
            let n: u64 = text
                .parse()
                .map_err(|_| format!("--budget must be a non-negative integer, got `{text}`"))?;
            Budget::limited(n)
        }
    };
    if let Some(text) = o.timeout_ms.as_deref() {
        let ms: u64 = text
            .parse()
            .map_err(|_| format!("--timeout-ms must be a non-negative integer, got `{text}`"))?;
        budget = budget.with_timeout_ms(ms);
    }
    Ok(budget)
}

/// Parses `--retry N [--escalate F]` into a [`RetryPolicy`]: `N` extra
/// attempts past the first, each under a budget escalated by `F`
/// (default 4). `None` when `--retry` was not given.
fn parse_retry(o: &Opts) -> Result<Option<RetryPolicy>, String> {
    let retries: u32 = match o.retry.as_deref() {
        None => {
            if o.escalate.is_some() {
                return Err("--escalate requires --retry".into());
            }
            return Ok(None);
        }
        Some(text) => text
            .parse()
            .map_err(|_| format!("--retry must be a non-negative integer, got `{text}`"))?,
    };
    let mut policy = RetryPolicy::new(retries.saturating_add(1));
    if let Some(text) = o.escalate.as_deref() {
        let factor: f64 = text
            .parse()
            .map_err(|_| format!("--escalate must be a number, got `{text}`"))?;
        if !factor.is_finite() || factor < 1.0 {
            return Err(format!(
                "--escalate must be a finite factor >= 1, got `{text}`"
            ));
        }
        policy = policy.with_escalation(factor);
    }
    Ok(Some(policy))
}

/// Parses `--engine {auto,naive,indexed,dense}` into a
/// [`TierPreference`]; `auto` (the default without the flag) routes
/// through the cost model with dense-tier promotion on hot relations.
fn parse_engine(o: &Opts) -> Result<TierPreference, String> {
    match o.engine.as_deref() {
        None => Ok(TierPreference::Auto),
        Some(text) => TierPreference::parse(text).map_err(|e| format!("--engine: {e}")),
    }
}

/// Applies `--add-dep` / `--drop-dep` mutations to a compiled session:
/// every `--add-dep` first (in flag order), then every `--drop-dep`.
/// Each mutation re-saturates only the relation it names (the rest of
/// the session stays warm) and is atomic — a failure leaves the session
/// reflecting the mutations applied so far, and aborts the command.
fn apply_mutations(session: &mut Session, schema: &Schema, o: &Opts) -> Result<(), CliFail> {
    if o.add_dep.is_empty() && o.drop_dep.is_empty() {
        return Ok(());
    }
    let parse = |texts: &[String], flag: &str| -> Result<Vec<Nfd>, CliFail> {
        texts
            .iter()
            .map(|t| Nfd::parse(schema, t).map_err(|e| CliFail::Usage(format!("{flag}: {e}"))))
            .collect()
    };
    let adds = parse(&o.add_dep, "--add-dep")?;
    let drops = parse(&o.drop_dep, "--drop-dep")?;
    session.add_deps(&adds).map_err(core_fail)?;
    session.remove_deps(&drops).map_err(core_fail)?;
    Ok(())
}

/// Attempts the `--snapshot FILE` warm start. `None` means "compile
/// fresh": either the flag was absent, or the image was rejected —
/// unreadable, corrupt, truncated, version-skewed, or frozen from a
/// different schema/Σ/policy. Rejection is graceful degradation, not an
/// error: the typed reason is logged to `out` and the caller proceeds
/// with an ordinary [`Session::with_tiers`] compile.
/// Image-size floor (bytes) below which `--snapshot` compiles fresh by
/// default. B17 measured the crossover honestly: a 7-NFD Course image
/// (1.6 KiB) thaws at 0.48× a fresh compile — decode + checksum +
/// replay validation costs more than the saturation it skips — while a
/// wide 64-NFD image (774 KiB) thaws at 7.4×. The gate sits well above
/// the regressing size and well below the winning one; `--thaw-min-bytes`
/// moves it (0 disables the gate).
const DEFAULT_THAW_MIN_BYTES: u64 = 16 * 1024;

fn thaw_from_flag<'s>(
    o: &Opts,
    schema: &'s Schema,
    sigma: &[Nfd],
    policy: &nfd_core::EmptySetPolicy,
    budget: &Budget,
    preference: TierPreference,
    out: &mut String,
) -> Option<Session<'s>> {
    let path = o.snapshot.as_deref()?;
    let floor = match o.thaw_min_bytes.as_deref() {
        None => DEFAULT_THAW_MIN_BYTES,
        Some(text) => match text.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                let _ = writeln!(
                    out,
                    "(--thaw-min-bytes `{text}` is not a non-negative integer; using {DEFAULT_THAW_MIN_BYTES})"
                );
                DEFAULT_THAW_MIN_BYTES
            }
        },
    };
    let mut attempt = || -> Result<Option<Session<'s>>, nfd_snap::SnapError> {
        let bytes = nfd_snap::read_file(std::path::Path::new(path))?;
        if (bytes.len() as u64) < floor {
            let _ = writeln!(
                out,
                "(snapshot `{path}` is {} bytes, under the {floor}-byte warm-start floor; tiny sessions compile faster than they thaw — compiling fresh)",
                bytes.len()
            );
            return Ok(None);
        }
        let snapshot = nfd_snap::decode(&bytes)?;
        Session::thaw(
            schema,
            sigma,
            policy.clone(),
            budget.clone(),
            preference,
            &snapshot,
        )
        .map(Some)
    };
    match attempt() {
        Ok(Some(session)) => {
            let _ = writeln!(out, "(warm start: thawed snapshot `{path}`)");
            Some(session)
        }
        Ok(None) => None,
        Err(e) => {
            let _ = writeln!(out, "(snapshot `{path}` rejected: {e}; compiling fresh)");
            None
        }
    }
}

/// Parses `--threads`: `0` (the default) means all available parallelism.
fn parse_threads(o: &Opts) -> Result<usize, String> {
    match o.threads.as_deref() {
        None => Ok(0),
        Some(text) => text
            .parse()
            .map_err(|_| format!("--threads must be a non-negative integer, got `{text}`")),
    }
}

fn dispatch(args: &[String], out: &mut String) -> Result<i32, CliFail> {
    let Some(cmd) = args.first() else {
        return Err("no subcommand".into());
    };
    let o = parse_opts(&args[1..])?;
    match cmd.as_str() {
        "check" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let inst = load_instance(&o, &schema)?;
            let mut failures = 0usize;
            for nfd in &sigma {
                let r = satisfy::check(&schema, &inst, nfd).map_err(|e| e.to_string())?;
                if r.holds {
                    let _ = writeln!(out, "ok    {nfd}");
                } else {
                    failures += 1;
                    let _ = writeln!(out, "FAIL  {nfd}");
                    if let Some(v) = r.violation {
                        let _ = writeln!(out, "      witness: {v}");
                    }
                }
            }
            let _ = writeln!(
                out,
                "{} of {} constraints hold",
                sigma.len() - failures,
                sigma.len()
            );
            Ok(if failures == 0 { 0 } else { 1 })
        }
        "implies" | "prove" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let policy = parse_policy(&o)?;
            let mut budget = parse_budget(&o)?;
            let preference = parse_engine(&o)?;
            let retry = if cmd == "implies" {
                parse_retry(&o)?
            } else {
                None
            };
            // Session compilation runs under the same budget as the
            // queries, so `--retry` must cover it too: a budget too tight
            // to even build escalates here, and the queries then run
            // under the budget that let the build finish. A `--snapshot`
            // warm start replaces the compile when the image is accepted.
            let thawed = thaw_from_flag(&o, &schema, &sigma, &policy, &budget, preference, out);
            let mut build_round: u32 = 0;
            let mut session = match thawed {
                Some(s) => s,
                None => loop {
                    match Session::with_tiers(
                        &schema,
                        &sigma,
                        policy.clone(),
                        budget.clone(),
                        preference,
                    ) {
                        Ok(s) => break s,
                        Err(CoreError::Exhausted(r))
                            if r.kind != nfd_govern::ResourceKind::Cancelled
                                && retry
                                    .as_ref()
                                    .is_some_and(|p| build_round + 1 < p.max_attempts) =>
                        {
                            build_round += 1;
                            let p = retry.as_ref().expect("guarded by is_some_and");
                            budget = budget.escalate(p.budget_escalation_factor);
                        }
                        Err(e) => return Err(core_fail(e)),
                    }
                },
            };
            apply_mutations(&mut session, &schema, &o)?;
            // Batch mode: one compiled session answers every goal of the
            // file — the compilation cost is paid once, not per goal.
            if cmd == "implies" && o.goals.is_some() {
                let path = o.goals.as_deref().expect("checked is_some");
                let goals =
                    parse_set(&schema, &read(path, "goals")?).map_err(|e| format!("goals: {e}"))?;
                if goals.is_empty() {
                    return Err(format!("goals file `{path}` contains no NFDs").into());
                }
                let threads = parse_threads(&o)?;
                let batch = match &retry {
                    Some(policy) => session
                        .implies_batch_retry(&goals, &budget, threads, policy)
                        .map_err(core_fail)?,
                    None => session
                        .implies_batch(&goals, &budget, threads)
                        .map_err(core_fail)?,
                };
                for (goal, slot) in goals.iter().zip(&batch.decisions) {
                    let word = match slot {
                        Ok(d) => match d.verdict.as_bool() {
                            Some(true) => "implied    ",
                            Some(false) => "not implied",
                            None => "exhausted  ",
                        },
                        Err(_) => "failed     ",
                    };
                    let _ = writeln!(out, "{word}  {goal}");
                    if let Ok(d) = slot {
                        let retries = d.attempts.iter().map(|a| a.round).max().unwrap_or(0);
                        if retries > 0 {
                            let _ = writeln!(
                                out,
                                "             (after {retries} retr{})",
                                if retries == 1 { "y" } else { "ies" }
                            );
                        }
                    }
                }
                // Tier report, only when the user opted in with --engine
                // (existing outputs stay byte-identical without it).
                if o.engine.is_some() {
                    let (mut naive, mut indexed, mut dense, mut none) = (0usize, 0, 0, 0);
                    for d in batch.decisions.iter().filter_map(|d| d.as_ref().ok()) {
                        match d.tier {
                            Some(nfd_core::Tier::Naive) => naive += 1,
                            Some(nfd_core::Tier::Indexed) => indexed += 1,
                            Some(nfd_core::Tier::Dense) => dense += 1,
                            None => none += 1,
                        }
                    }
                    let _ = writeln!(
                        out,
                        "(engine tiers: naive={naive} indexed={indexed} dense={dense} none={none})"
                    );
                }
                let implied = batch.implied_count();
                let exhausted = batch.exhausted_count();
                let failed = batch.failed_count();
                let _ = writeln!(out, "{implied} of {} goals implied", goals.len());
                if failed > 0 {
                    let _ = writeln!(out, "({failed} failed internally)");
                    return Ok(101);
                }
                if exhausted > 0 {
                    let _ = writeln!(out, "({exhausted} exhausted the budget)");
                    return Ok(3);
                }
                return Ok(if implied == goals.len() { 0 } else { 1 });
            }
            let goal_text = o
                .positional
                .first()
                .ok_or("expected the goal NFD as a positional argument (or --goals FILE)")?;
            let goal = Nfd::parse(&schema, goal_text).map_err(|e| format!("goal: {e}"))?;
            if cmd == "implies" {
                let decision = match &retry {
                    Some(policy) => session
                        .implies_retry(&goal, &budget, policy)
                        .map_err(core_fail)?,
                    None => session.implies_with(&goal, &budget).map_err(core_fail)?,
                };
                match decision.verdict.as_bool() {
                    Some(yes) => {
                        let _ = writeln!(out, "{}", if yes { "implied" } else { "not implied" });
                        // Surface fallbacks: the verdict is just as valid,
                        // but the user should know saturation gave up.
                        if let Some(by) = decision.answered_by() {
                            if by != "saturation" {
                                let _ = writeln!(out, "(answered by {by} after fallback)");
                            }
                        }
                        let retries = decision.attempts.iter().map(|a| a.round).max().unwrap_or(0);
                        if retries > 0 {
                            let _ = writeln!(
                                out,
                                "(after {retries} retr{})",
                                if retries == 1 { "y" } else { "ies" }
                            );
                        }
                        if o.engine.is_some() {
                            let _ = writeln!(
                                out,
                                "(engine tier: {})",
                                decision.tier.map_or("none", |t| t.name())
                            );
                        }
                        Ok(if yes { 0 } else { 1 })
                    }
                    None => {
                        for a in &decision.attempts {
                            if let AttemptOutcome::Exhausted(r) = &a.outcome {
                                let _ = writeln!(out, "{}: exhausted: {r}", a.decider);
                            }
                        }
                        let _ = writeln!(out, "exhausted (no decider finished within budget)");
                        Ok(3)
                    }
                }
            } else {
                match session.prove(&goal).map_err(core_fail)? {
                    Some(pf) => {
                        session
                            .verify(&pf)
                            .map_err(|e| format!("internal: certificate rejected: {e}"))?;
                        let _ = write!(out, "{pf}");
                        if o.engine.is_some() {
                            let _ = writeln!(
                                out,
                                "(proof replay always uses the indexed kernel; --engine governs implication queries)"
                            );
                        }
                        Ok(0)
                    }
                    None => {
                        let _ = writeln!(out, "not implied (no derivation exists)");
                        Ok(1)
                    }
                }
            }
        }
        "closure" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let base_text = o.base.as_deref().ok_or("--base is required")?;
            let base = RootedPath::parse(base_text).map_err(|e| format!("--base: {e}"))?;
            let lhs = parse_lhs(&o)?;
            let policy = parse_policy(&o)?;
            let budget = parse_budget(&o)?;
            let preference = parse_engine(&o)?;
            let mut session =
                match thaw_from_flag(&o, &schema, &sigma, &policy, &budget, preference, out) {
                    Some(s) => s,
                    None => Session::with_tiers(&schema, &sigma, policy, budget, preference)
                        .map_err(core_fail)?,
                };
            apply_mutations(&mut session, &schema, &o)?;
            let (cl, trace) = session.closure_traced(&base, &lhs).map_err(core_fail)?;
            for p in &cl {
                let _ = writeln!(out, "{p}");
            }
            let _ = writeln!(out, "({} paths)", cl.len());
            if o.engine.is_some() {
                let _ = writeln!(
                    out,
                    "(engine tier: {})",
                    trace.tier.map_or("none", |t| t.name())
                );
            }
            Ok(0)
        }
        "witness" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let base_text = o.base.as_deref().ok_or("--base is required")?;
            let base = RootedPath::parse(base_text).map_err(|e| format!("--base: {e}"))?;
            let lhs = parse_lhs(&o)?;
            let engine = Engine::new(&schema, &sigma).map_err(|e| e.to_string())?;
            let built =
                construct::counterexample(&engine, &base, &lhs).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "# Appendix-A instance: satisfies the dependency set and violates"
            );
            let _ = writeln!(
                out,
                "# {base}:[{} -> y] for every y outside the closure below.",
                lhs.iter()
                    .map(Path::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                out,
                "# closure: {}",
                built
                    .closure
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = write!(out, "{}", built.instance);
            Ok(0)
        }
        "keys" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let rel_text = o.relation.as_deref().ok_or("--relation is required")?;
            let relation = nfd_model::Label::new(rel_text);
            let budget = parse_budget(&o)?;
            let preference = parse_engine(&o)?;
            let policy = nfd_core::EmptySetPolicy::Forbidden;
            let mut session =
                match thaw_from_flag(&o, &schema, &sigma, &policy, &budget, preference, out) {
                    Some(s) => s,
                    None => Session::with_tiers(&schema, &sigma, policy, budget, preference)
                        .map_err(core_fail)?,
                };
            apply_mutations(&mut session, &schema, &o)?;
            let threads = parse_threads(&o)?;
            let keys = session
                .candidate_keys_threaded(relation, 4, threads)
                .map_err(core_fail)?;
            for k in &keys {
                let _ = writeln!(
                    out,
                    "{{{}}}",
                    k.iter().map(Path::to_string).collect::<Vec<_>>().join(", ")
                );
            }
            let _ = writeln!(out, "({} candidate keys of size ≤ 4)", keys.len());
            if o.engine.is_some() {
                let _ = writeln!(
                    out,
                    "(engine: {preference}, dense closure built: {})",
                    if session.select_state().dense_built(relation) {
                        "yes"
                    } else {
                        "no"
                    }
                );
            }
            Ok(0)
        }
        "analyze" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let engine = Engine::new(&schema, &sigma).map_err(|e| e.to_string())?;
            let singles = analysis::forced_singletons(&engine).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "forced singleton sets:");
            if singles.is_empty() {
                let _ = writeln!(out, "  (none)");
            }
            for s in singles {
                let _ = writeln!(out, "  {s}");
            }
            let eod = analysis::equal_or_disjoint_sets(&engine).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "equal-or-disjoint sets:");
            if eod.is_empty() {
                let _ = writeln!(out, "  (none)");
            }
            for s in eod {
                let _ = writeln!(out, "  {s}");
            }
            let min = analysis::minimize(&schema, &sigma).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "minimal cover ({} of {} kept):",
                min.len(),
                sigma.len()
            );
            for nfd in min {
                let _ = writeln!(out, "  {nfd};");
            }
            Ok(0)
        }
        "render" => {
            let schema = load_schema(&o)?;
            let inst = load_instance(&o, &schema)?;
            let _ = write!(out, "{}", render::render_instance(&schema, &inst));
            Ok(0)
        }
        "snapshot" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let policy = parse_policy(&o)?;
            let budget = parse_budget(&o)?;
            let preference = parse_engine(&o)?;
            let out_path = o.out.as_deref().ok_or("--out is required")?;
            let mut session = Session::with_tiers(&schema, &sigma, policy, budget, preference)
                .map_err(core_fail)?;
            apply_mutations(&mut session, &schema, &o)?;
            let image = session.freeze();
            let bytes = nfd_snap::encode(&image);
            nfd_snap::write_atomic(std::path::Path::new(out_path), &bytes)
                .map_err(|e| CliFail::Usage(format!("cannot write snapshot `{out_path}`: {e}")))?;
            let _ = writeln!(
                out,
                "snapshot: wrote {} bytes to `{out_path}` ({} pools, {} cached closures)",
                bytes.len(),
                image.pools.len(),
                image.cache.len()
            );
            Ok(0)
        }
        "serve" => {
            let addr = o
                .addr
                .as_deref()
                .ok_or("--addr is required (e.g. --addr 127.0.0.1:7171)")?;
            let parse_u64 = |text: Option<&str>, flag: &str| -> Result<Option<u64>, String> {
                text.map(|t| {
                    t.parse::<u64>()
                        .map_err(|_| format!("{flag} must be a non-negative integer, got `{t}`"))
                })
                .transpose()
            };
            let registry_cfg = crate::serve::RegistryConfig {
                max_resident: parse_u64(o.max_resident.as_deref(), "--max-resident")?
                    .map(|n| n as usize)
                    .unwrap_or(8),
                default_quota: parse_u64(o.quota.as_deref(), "--quota")?,
                query_budget: parse_u64(o.budget.as_deref(), "--budget")?,
                request_timeout_ms: parse_u64(o.timeout_ms.as_deref(), "--timeout-ms")?
                    .unwrap_or(30_000),
                // 0 = all available parallelism, matching --threads.
                workers: parse_u64(o.workers.as_deref(), "--workers")?
                    .map(|n| n as usize)
                    .unwrap_or(0),
            };
            let mut server_cfg = nfd_serve::ServerConfig::default();
            if let Some(n) = parse_u64(o.max_inflight.as_deref(), "--max-inflight")? {
                server_cfg.max_inflight = n as usize;
            }
            if let Some(n) = parse_u64(o.queue.as_deref(), "--queue")? {
                server_cfg.queue_depth = n as usize;
            }
            let registry = crate::serve::Registry::new(registry_cfg);
            let server = nfd_serve::Server::bind(addr, server_cfg, registry)
                .map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
            let local = server
                .local_addr()
                .map_err(|e| CliFail::Internal(format!("local_addr: {e}")))?;
            // Directly to stderr, not the buffered sink: scripts need the
            // "listening" line (with the resolved port) *before* exit.
            eprintln!("nfdtool serve: listening on {local} (send SHUTDOWN to drain)");
            let stats = server
                .run()
                .map_err(|e| CliFail::Internal(format!("server failed: {e}")))?;
            let _ = writeln!(
                out,
                "serve: drained cleanly — {} connections, {} requests, {} shed, {} contained panics",
                stats.connections, stats.requests, stats.shed, stats.contained_panics
            );
            Ok(0)
        }
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand `{other}`").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_subcommand_is_usage_error() {
        let mut out = String::new();
        assert_eq!(run(&[], &mut out), 2);
        assert!(out.contains("usage:"));
    }

    #[test]
    fn unknown_subcommand() {
        let mut out = String::new();
        assert_eq!(run(&args(&["frobnicate"]), &mut out), 2);
        assert!(out.contains("unknown subcommand"));
    }

    #[test]
    fn help_prints_usage() {
        let mut out = String::new();
        assert_eq!(run(&args(&["help"]), &mut out), 0);
        assert!(out.contains("nfdtool implies"));
    }

    #[test]
    fn missing_flag_value() {
        let mut out = String::new();
        assert_eq!(run(&args(&["closure", "--schema"]), &mut out), 2);
        assert!(out.contains("needs a value"));
    }
}
