//! The `nfdtool` command-line interface.
//!
//! A thin, dependency-free front end over the library: schemas,
//! dependency sets and instances are read from files in the textual
//! syntaxes of [`nfd_model::parse`] and [`nfd_core::nfd`], and each
//! subcommand maps to one library entry point.
//!
//! ```text
//! nfdtool check    --schema S --deps D --instance I    # I ⊨ Σ? (witnesses)
//! nfdtool implies  --schema S --deps D "R:[A -> B]"    # Σ ⊨ σ?
//! nfdtool implies  --schema S --deps D --goals G       # batch: one session, many σ
//! nfdtool prove    --schema S --deps D "R:[A -> B]"    # derivation certificate
//! nfdtool closure  --schema S --deps D --base R:A --lhs B:C,D
//! nfdtool witness  --schema S --deps D --base R --lhs A   # Appendix A instance
//! nfdtool keys     --schema S --deps D --relation R
//! nfdtool analyze  --schema S --deps D            # singletons, redundancy, minimal cover
//! nfdtool render   --schema S --instance I        # nested tables
//! ```
//!
//! The `implies`, `prove`, `closure` and `keys` subcommands are served by
//! one compiled [`Session`]; batch mode (`--goals`) amortizes that
//! compilation over every goal in the file.
//!
//! The entry point [`run`] writes to the supplied sink and returns a
//! process exit code, so the whole CLI is unit-testable.

use crate::session::Session;
use nfd_core::engine::Engine;
use nfd_core::{analysis, construct, nfd::parse_set, satisfy, Nfd};
use nfd_model::{render, Instance, Schema};
use nfd_path::{Path, RootedPath};
use std::fmt::Write as _;

/// Runs the CLI with the given arguments (excluding the program name),
/// writing human-readable output to `out`. Returns the exit code:
/// `0` success / property holds, `1` property fails (violation found or
/// not implied), `2` usage or input error.
pub fn run(args: &[String], out: &mut String) -> i32 {
    match dispatch(args, out) {
        Ok(code) => code,
        Err(msg) => {
            let _ = writeln!(out, "error: {msg}");
            let _ = writeln!(out, "{USAGE}");
            2
        }
    }
}

const USAGE: &str = "usage:
  nfdtool check    --schema FILE --deps FILE --instance FILE
  nfdtool implies  --schema FILE --deps FILE [--policy P] NFD
  nfdtool implies  --schema FILE --deps FILE [--policy P] --goals FILE
  nfdtool prove    --schema FILE --deps FILE [--policy P] NFD
  nfdtool closure  --schema FILE --deps FILE [--policy P] --base PATH [--lhs P1,P2,…]
  nfdtool witness  --schema FILE --deps FILE --base PATH [--lhs P1,P2,…]
  nfdtool keys     --schema FILE --deps FILE --relation NAME
  nfdtool analyze  --schema FILE --deps FILE
  nfdtool render   --schema FILE --instance FILE

  --goals FILE decides every NFD of the (semicolon-separated) file against
  one compiled session; exit 0 iff all goals are implied.

  --policy P controls empty-set reasoning (Section 3.2 of the paper):
     strict            no instance contains an empty set (default; Theorem 3.1)
     pessimistic       empty sets anywhere; only `follows`-safe inferences
     nonempty:R:A,R:B  like pessimistic, with the listed set paths declared
                       non-empty (the paper's NON-NULL analogue)";

struct Opts {
    schema: Option<String>,
    deps: Option<String>,
    instance: Option<String>,
    base: Option<String>,
    lhs: Option<String>,
    relation: Option<String>,
    policy: Option<String>,
    goals: Option<String>,
    positional: Vec<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        schema: None,
        deps: None,
        instance: None,
        base: None,
        lhs: None,
        relation: None,
        policy: None,
        goals: None,
        positional: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag `{}` needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--schema" => o.schema = Some(take(&mut i)?),
            "--deps" => o.deps = Some(take(&mut i)?),
            "--instance" => o.instance = Some(take(&mut i)?),
            "--base" => o.base = Some(take(&mut i)?),
            "--lhs" => o.lhs = Some(take(&mut i)?),
            "--relation" => o.relation = Some(take(&mut i)?),
            "--policy" => o.policy = Some(take(&mut i)?),
            "--goals" => o.goals = Some(take(&mut i)?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            other => o.positional.push(other.to_string()),
        }
        i += 1;
    }
    Ok(o)
}

fn read(path: &str, what: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {what} file `{path}`: {e}"))
}

fn load_schema(o: &Opts) -> Result<Schema, String> {
    let path = o.schema.as_deref().ok_or("--schema is required")?;
    Schema::parse(&read(path, "schema")?).map_err(|e| format!("schema: {e}"))
}

fn load_deps(o: &Opts, schema: &Schema) -> Result<Vec<Nfd>, String> {
    let path = o.deps.as_deref().ok_or("--deps is required")?;
    parse_set(schema, &read(path, "dependencies")?).map_err(|e| format!("dependencies: {e}"))
}

fn load_instance(o: &Opts, schema: &Schema) -> Result<Instance, String> {
    let path = o.instance.as_deref().ok_or("--instance is required")?;
    Instance::parse(schema, &read(path, "instance")?).map_err(|e| format!("instance: {e}"))
}

fn parse_lhs(o: &Opts) -> Result<Vec<Path>, String> {
    match &o.lhs {
        None => Ok(Vec::new()),
        Some(text) => text
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| Path::parse(s).map_err(|e| format!("--lhs: {e}")))
            .collect(),
    }
}

fn parse_policy(o: &Opts) -> Result<nfd_core::EmptySetPolicy, String> {
    match o.policy.as_deref() {
        None | Some("strict") => Ok(nfd_core::EmptySetPolicy::Forbidden),
        Some("pessimistic") => Ok(nfd_core::EmptySetPolicy::pessimistic()),
        Some(spec) if spec.starts_with("nonempty:") => {
            let paths: Result<Vec<RootedPath>, String> = spec["nonempty:".len()..]
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| RootedPath::parse(s.trim()).map_err(|e| format!("--policy: {e}")))
                .collect();
            Ok(nfd_core::EmptySetPolicy::non_empty(paths?))
        }
        Some(other) => Err(format!(
            "--policy must be `strict`, `pessimistic` or `nonempty:R:A,…`, got `{other}`"
        )),
    }
}

fn dispatch(args: &[String], out: &mut String) -> Result<i32, String> {
    let Some(cmd) = args.first() else {
        return Err("no subcommand".into());
    };
    let o = parse_opts(&args[1..])?;
    match cmd.as_str() {
        "check" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let inst = load_instance(&o, &schema)?;
            let mut failures = 0usize;
            for nfd in &sigma {
                let r = satisfy::check(&schema, &inst, nfd).map_err(|e| e.to_string())?;
                if r.holds {
                    let _ = writeln!(out, "ok    {nfd}");
                } else {
                    failures += 1;
                    let _ = writeln!(out, "FAIL  {nfd}");
                    if let Some(v) = r.violation {
                        let _ = writeln!(out, "      witness: {v}");
                    }
                }
            }
            let _ = writeln!(
                out,
                "{} of {} constraints hold",
                sigma.len() - failures,
                sigma.len()
            );
            Ok(if failures == 0 { 0 } else { 1 })
        }
        "implies" | "prove" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let policy = parse_policy(&o)?;
            let session =
                Session::with_policy(&schema, &sigma, policy).map_err(|e| e.to_string())?;
            // Batch mode: one compiled session answers every goal of the
            // file — the compilation cost is paid once, not per goal.
            if cmd == "implies" && o.goals.is_some() {
                let path = o.goals.as_deref().expect("checked is_some");
                let goals =
                    parse_set(&schema, &read(path, "goals")?).map_err(|e| format!("goals: {e}"))?;
                if goals.is_empty() {
                    return Err(format!("goals file `{path}` contains no NFDs"));
                }
                let mut implied = 0usize;
                for goal in &goals {
                    let yes = session.implies(goal).map_err(|e| e.to_string())?;
                    if yes {
                        implied += 1;
                    }
                    let _ = writeln!(
                        out,
                        "{}  {goal}",
                        if yes { "implied    " } else { "not implied" }
                    );
                }
                let _ = writeln!(out, "{implied} of {} goals implied", goals.len());
                return Ok(if implied == goals.len() { 0 } else { 1 });
            }
            let goal_text = o
                .positional
                .first()
                .ok_or("expected the goal NFD as a positional argument (or --goals FILE)")?;
            let goal = Nfd::parse(&schema, goal_text).map_err(|e| format!("goal: {e}"))?;
            if cmd == "implies" {
                let yes = session.implies(&goal).map_err(|e| e.to_string())?;
                let _ = writeln!(out, "{}", if yes { "implied" } else { "not implied" });
                Ok(if yes { 0 } else { 1 })
            } else {
                match session.prove(&goal).map_err(|e| e.to_string())? {
                    Some(pf) => {
                        session
                            .verify(&pf)
                            .map_err(|e| format!("internal: certificate rejected: {e}"))?;
                        let _ = write!(out, "{pf}");
                        Ok(0)
                    }
                    None => {
                        let _ = writeln!(out, "not implied (no derivation exists)");
                        Ok(1)
                    }
                }
            }
        }
        "closure" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let base_text = o.base.as_deref().ok_or("--base is required")?;
            let base = RootedPath::parse(base_text).map_err(|e| format!("--base: {e}"))?;
            let lhs = parse_lhs(&o)?;
            let policy = parse_policy(&o)?;
            let session =
                Session::with_policy(&schema, &sigma, policy).map_err(|e| e.to_string())?;
            let cl = session.closure(&base, &lhs).map_err(|e| e.to_string())?;
            for p in &cl {
                let _ = writeln!(out, "{p}");
            }
            let _ = writeln!(out, "({} paths)", cl.len());
            Ok(0)
        }
        "witness" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let base_text = o.base.as_deref().ok_or("--base is required")?;
            let base = RootedPath::parse(base_text).map_err(|e| format!("--base: {e}"))?;
            let lhs = parse_lhs(&o)?;
            let engine = Engine::new(&schema, &sigma).map_err(|e| e.to_string())?;
            let built =
                construct::counterexample(&engine, &base, &lhs).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "# Appendix-A instance: satisfies the dependency set and violates"
            );
            let _ = writeln!(
                out,
                "# {base}:[{} -> y] for every y outside the closure below.",
                lhs.iter()
                    .map(Path::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                out,
                "# closure: {}",
                built
                    .closure
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = write!(out, "{}", built.instance);
            Ok(0)
        }
        "keys" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let rel_text = o.relation.as_deref().ok_or("--relation is required")?;
            let relation = nfd_model::Label::new(rel_text);
            let session = Session::new(&schema, &sigma).map_err(|e| e.to_string())?;
            let keys = session
                .candidate_keys(relation, 4)
                .map_err(|e| e.to_string())?;
            for k in &keys {
                let _ = writeln!(
                    out,
                    "{{{}}}",
                    k.iter().map(Path::to_string).collect::<Vec<_>>().join(", ")
                );
            }
            let _ = writeln!(out, "({} candidate keys of size ≤ 4)", keys.len());
            Ok(0)
        }
        "analyze" => {
            let schema = load_schema(&o)?;
            let sigma = load_deps(&o, &schema)?;
            let engine = Engine::new(&schema, &sigma).map_err(|e| e.to_string())?;
            let singles = analysis::forced_singletons(&engine).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "forced singleton sets:");
            if singles.is_empty() {
                let _ = writeln!(out, "  (none)");
            }
            for s in singles {
                let _ = writeln!(out, "  {s}");
            }
            let eod = analysis::equal_or_disjoint_sets(&engine).map_err(|e| e.to_string())?;
            let _ = writeln!(out, "equal-or-disjoint sets:");
            if eod.is_empty() {
                let _ = writeln!(out, "  (none)");
            }
            for s in eod {
                let _ = writeln!(out, "  {s}");
            }
            let min = analysis::minimize(&schema, &sigma).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "minimal cover ({} of {} kept):",
                min.len(),
                sigma.len()
            );
            for nfd in min {
                let _ = writeln!(out, "  {nfd};");
            }
            Ok(0)
        }
        "render" => {
            let schema = load_schema(&o)?;
            let inst = load_instance(&o, &schema)?;
            let _ = write!(out, "{}", render::render_instance(&schema, &inst));
            Ok(0)
        }
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_subcommand_is_usage_error() {
        let mut out = String::new();
        assert_eq!(run(&[], &mut out), 2);
        assert!(out.contains("usage:"));
    }

    #[test]
    fn unknown_subcommand() {
        let mut out = String::new();
        assert_eq!(run(&args(&["frobnicate"]), &mut out), 2);
        assert!(out.contains("unknown subcommand"));
    }

    #[test]
    fn help_prints_usage() {
        let mut out = String::new();
        assert_eq!(run(&args(&["help"]), &mut out), 0);
        assert!(out.contains("nfdtool implies"));
    }

    #[test]
    fn missing_flag_value() {
        let mut out = String::new();
        assert_eq!(run(&args(&["closure", "--schema"]), &mut out), 2);
        assert!(out.contains("needs a value"));
    }
}
