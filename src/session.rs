//! Query sessions and the unified [`Decider`] interface.
//!
//! The repository grew three independent decision procedures for
//! `Σ ⊨ σ`:
//!
//! 1. **Saturation** — the eight-rule axiomatic engine of
//!    [`nfd_core::engine`] (sound and complete, Theorem 3.1);
//! 2. **Chase** — the nested tableau chase of [`nfd_chase`] (Section 4's
//!    future work, implemented for the no-empty-sets regime);
//! 3. **LogicEval** — the Appendix A counterexample construction combined
//!    with the Section 2.2 logic translation: build the universal witness
//!    instance for `x0:[X → ·]` and evaluate the translated goal on it.
//!
//! [`Decider`] puts the three behind one interface so differential tests
//! (and curious users) can run them against each other.
//!
//! [`Session`] is the amortizing front end: it compiles `(Schema, Σ)`
//! once — path tables, normalized dependency pool, full saturation — and
//! then serves unlimited [`implies`](Session::implies) /
//! [`closure`](Session::closure) / [`check`](Session::check) /
//! [`prove`](Session::prove) queries against the cached state. Building a
//! fresh [`Engine`] per query repeats that compilation every time; a
//! session pays it once (see `crates/bench/benches/session_amortized.rs`
//! for measurements).

use nfd_core::engine::Engine;
use nfd_core::proof::{self, Proof};
use nfd_core::{analysis, construct, satisfy, CoreError, EmptySetPolicy, Nfd, SatisfyReport};
use nfd_logic::{eval, translate_nfd};
use nfd_model::{Instance, Label, Schema};
use nfd_path::table::SchemaTables;
use nfd_path::{Path, RootedPath};

/// An error from a [`Decider`] — a human-readable description carrying
/// the name of the procedure that failed.
#[derive(Debug)]
pub struct DeciderError {
    /// Which procedure failed.
    pub decider: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeciderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.decider, self.message)
    }
}

impl std::error::Error for DeciderError {}

/// A decision procedure for NFD implication: does `Σ ⊨ goal` hold over
/// `schema` (in the no-empty-sets regime)?
///
/// All implementations are sound and complete on their supported inputs,
/// so any two must agree wherever both apply — a fact the differential
/// test suite exercises.
pub trait Decider {
    /// A short stable name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Decides `Σ ⊨ goal`.
    fn implies(&self, schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, DeciderError>;
}

/// The axiomatic saturation engine (Theorem 3.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Saturation;

impl Decider for Saturation {
    fn name(&self) -> &'static str {
        "saturation"
    }

    fn implies(&self, schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, DeciderError> {
        let err = |e: CoreError| DeciderError {
            decider: "saturation",
            message: e.to_string(),
        };
        let engine = Engine::new(schema, sigma).map_err(err)?;
        engine.implies(goal).map_err(err)
    }
}

/// The nested tableau chase of [`nfd_chase`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Chase;

impl Decider for Chase {
    fn name(&self) -> &'static str {
        "chase"
    }

    fn implies(&self, schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, DeciderError> {
        nfd_chase::implies_by_chase(schema, sigma, goal).map_err(|e| DeciderError {
            decider: "chase",
            message: e.to_string(),
        })
    }
}

/// The model-theoretic route: build the Appendix A universal witness for
/// `goal.base:[goal.lhs → ·]` and evaluate the Section 2.2 logic
/// translation of the goal on it. By Lemma A.1 the witness satisfies Σ
/// and violates exactly the non-implied goals, so evaluation *is*
/// decision. Requires infinite base domains (schemas using `bool` are
/// rejected, as in the construction itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct LogicEval;

impl Decider for LogicEval {
    fn name(&self) -> &'static str {
        "logic-eval"
    }

    fn implies(&self, schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, DeciderError> {
        let err = |m: String| DeciderError {
            decider: "logic-eval",
            message: m,
        };
        let engine = Engine::new(schema, sigma).map_err(|e| err(e.to_string()))?;
        let built = construct::counterexample(&engine, &goal.base, goal.lhs())
            .map_err(|e| err(e.to_string()))?;
        let formula = translate_nfd(schema, &goal.base, goal.lhs(), &goal.rhs)
            .map_err(|e| err(e.to_string()))?;
        eval(&built.instance, &formula).map_err(|e| err(e.to_string()))
    }
}

/// Every built-in decision procedure, for differential testing.
pub fn all_deciders() -> Vec<Box<dyn Decider>> {
    vec![Box::new(Saturation), Box::new(Chase), Box::new(LogicEval)]
}

/// A compiled `(Schema, Σ)` serving unlimited queries.
///
/// Construction interns every path of every relation into dense
/// [`SchemaTables`], normalizes Σ to simple form and saturates the
/// per-relation dependency pools — once. Each query afterwards is a
/// bitset fixed point over the cached state.
///
/// ```
/// use nfd::session::Session;
/// use nfd_core::Nfd;
/// use nfd_model::Schema;
///
/// let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
/// let sigma = nfd::core::nfd::parse_set(&schema, "R:[A -> B]; R:[B -> C];").unwrap();
/// let session = Session::new(&schema, &sigma).unwrap();
/// assert!(session.implies_text("R:[A -> C]").unwrap());
/// assert!(!session.implies_text("R:[C -> A]").unwrap());
/// ```
pub struct Session<'s> {
    schema: &'s Schema,
    engine: Engine<'s>,
}

impl<'s> Session<'s> {
    /// Compiles a session under [`EmptySetPolicy::Forbidden`] (the
    /// paper's Theorem 3.1 regime).
    pub fn new(schema: &'s Schema, sigma: &[Nfd]) -> Result<Session<'s>, CoreError> {
        Session::with_policy(schema, sigma, EmptySetPolicy::Forbidden)
    }

    /// Compiles a session under the given empty-set policy
    /// (Section 3.2).
    pub fn with_policy(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
    ) -> Result<Session<'s>, CoreError> {
        let engine = Engine::with_policy(schema, sigma, policy)?;
        Ok(Session { schema, engine })
    }

    /// Re-compiles this session's Σ under a different empty-set policy,
    /// reusing the already-compiled path tables (schema interning is not
    /// repeated; only saturation runs again).
    pub fn reconfigure(&self, policy: EmptySetPolicy) -> Result<Session<'s>, CoreError> {
        let engine = Engine::with_tables(
            self.schema,
            self.engine.tables().clone(),
            &self.engine.sigma,
            policy,
            self.engine.budget(),
        )?;
        Ok(Session {
            schema: self.schema,
            engine,
        })
    }

    /// The schema this session reasons over.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }

    /// The dependency set Σ the session was compiled from.
    pub fn sigma(&self) -> &[Nfd] {
        &self.engine.sigma
    }

    /// The compiled path tables (shared, cheap to clone).
    pub fn tables(&self) -> &SchemaTables {
        self.engine.tables()
    }

    /// The underlying saturated engine, for APIs that take one directly
    /// (proof replay, counterexample construction, analyses).
    pub fn engine(&self) -> &Engine<'s> {
        &self.engine
    }

    /// Does Σ imply `goal`? One chained bitset fixed point over the
    /// cached saturation.
    pub fn implies(&self, goal: &Nfd) -> Result<bool, CoreError> {
        self.engine.implies(goal)
    }

    /// Parses `text` as an NFD over the session schema and decides it.
    pub fn implies_text(&self, text: &str) -> Result<bool, CoreError> {
        let goal = Nfd::parse(self.schema, text)?;
        self.implies(&goal)
    }

    /// The dependency closure `(base, X, Σ)*` (Definition 3.1).
    pub fn closure(&self, base: &RootedPath, lhs: &[Path]) -> Result<Vec<RootedPath>, CoreError> {
        self.engine.closure(base, lhs)
    }

    /// Checks an instance against every NFD of Σ. The reports are in
    /// Σ order; `reports[i]` describes `self.sigma()[i]`.
    pub fn check(&self, instance: &Instance) -> Result<Vec<SatisfyReport>, CoreError> {
        self.engine
            .sigma
            .iter()
            .map(|nfd| satisfy::check(self.schema, instance, nfd))
            .collect()
    }

    /// Produces a replayable derivation certificate for `goal`, or `None`
    /// when the goal is not implied.
    pub fn prove(&self, goal: &Nfd) -> Result<Option<Proof>, CoreError> {
        proof::prove(&self.engine, goal)
    }

    /// Verifies a certificate against this session's Σ.
    pub fn verify(&self, pf: &Proof) -> Result<(), CoreError> {
        proof::verify(&self.engine, pf)
    }

    /// Candidate keys of `relation` up to `max_size` paths, by closure
    /// search over the cached saturation.
    pub fn candidate_keys(
        &self,
        relation: Label,
        max_size: usize,
    ) -> Result<Vec<Vec<Path>>, CoreError> {
        analysis::candidate_keys(&self.engine, relation, max_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::nfd::parse_set;

    fn course() -> (Schema, &'static str) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap();
        let sigma = "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
             Course:[books:isbn -> books:title];
             Course:students:[sid -> grade];
             Course:[students:sid -> students:age];
             Course:[time, students:sid -> cnum];";
        (schema, sigma)
    }

    #[test]
    fn session_serves_all_query_kinds() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        let s = Session::new(&schema, &sigma).unwrap();

        // implies — the paper's motivating question.
        assert!(s
            .implies_text("Course:[time, students:sid -> books]")
            .unwrap());
        assert!(!s.implies_text("Course:[time -> cnum]").unwrap());

        // closure.
        let cl = s
            .closure(
                &RootedPath::parse("Course").unwrap(),
                &[Path::parse("cnum").unwrap()],
            )
            .unwrap();
        assert!(cl.iter().any(|p| p.to_string() == "Course:time"));

        // prove + verify round-trip.
        let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
        let pf = s.prove(&goal).unwrap().expect("implied goals have proofs");
        s.verify(&pf).unwrap();
        assert!(s
            .prove(&Nfd::parse(&schema, "Course:[time -> cnum]").unwrap())
            .unwrap()
            .is_none());

        // check.
        let inst = Instance::parse(&schema, "Course = {};").unwrap();
        let reports = s.check(&inst).unwrap();
        assert_eq!(reports.len(), s.sigma().len());
        assert!(reports.iter().all(|r| r.holds));

        // keys.
        let keys = s.candidate_keys(Label::new("Course"), 2).unwrap();
        assert!(keys
            .iter()
            .any(|k| k.len() == 1 && k[0].to_string() == "cnum"));
    }

    #[test]
    fn reconfigure_reuses_tables() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B:C];").unwrap();
        let strict = Session::new(&schema, &sigma).unwrap();
        assert!(strict.implies_text("R:[A -> B:C]").unwrap());
        let pessimistic = strict.reconfigure(EmptySetPolicy::pessimistic()).unwrap();
        // Under empty-set pessimism the prefix rule loses its footing for
        // B, but the given dependency itself still holds.
        assert!(pessimistic.implies_text("R:[A -> B:C]").unwrap());
    }

    #[test]
    fn deciders_agree_on_the_worked_example() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        for goal_text in [
            "Course:[time, students:sid -> books]",
            "Course:[cnum -> students:age]",
            "Course:[time -> cnum]",
            "Course:[books:title -> books:isbn]",
        ] {
            let goal = Nfd::parse(&schema, goal_text).unwrap();
            let verdicts: Vec<(&'static str, bool)> = all_deciders()
                .iter()
                .map(|d| (d.name(), d.implies(&schema, &sigma, &goal).unwrap()))
                .collect();
            assert!(
                verdicts.windows(2).all(|w| w[0].1 == w[1].1),
                "deciders disagree on {goal_text}: {verdicts:?}"
            );
        }
    }
}
