//! Query sessions and the unified [`Decider`] interface.
//!
//! The repository grew three independent decision procedures for
//! `Σ ⊨ σ`:
//!
//! 1. **Saturation** — the eight-rule axiomatic engine of
//!    [`nfd_core::engine`] (sound and complete, Theorem 3.1);
//! 2. **Chase** — the nested tableau chase of [`nfd_chase`] (Section 4's
//!    future work, implemented for the no-empty-sets regime);
//! 3. **LogicEval** — the Appendix A counterexample construction combined
//!    with the Section 2.2 logic translation: build the universal witness
//!    instance for `x0:[X → ·]` and evaluate the translated goal on it.
//!
//! [`Decider`] puts the three behind one interface so differential tests
//! (and curious users) can run them against each other.
//!
//! [`Session`] is the amortizing front end: it compiles `(Schema, Σ)`
//! once — path tables, normalized dependency pool, full saturation — and
//! then serves unlimited [`implies`](Session::implies) /
//! [`closure`](Session::closure) / [`check`](Session::check) /
//! [`prove`](Session::prove) queries against the cached state. Building a
//! fresh [`Engine`] per query repeats that compilation every time; a
//! session pays it once (see `crates/bench/benches/session_amortized.rs`
//! for measurements).

use nfd_core::engine::Engine;
use nfd_core::proof::{self, Proof};
use nfd_core::{analysis, construct, satisfy, CoreError, EmptySetPolicy, Nfd, SatisfyReport};
use nfd_govern::{Budget, ResourceReport, Verdict};
use nfd_logic::{eval_budgeted, translate_nfd, EvalError};
use nfd_model::{Instance, Label, Schema};
use nfd_path::table::SchemaTables;
use nfd_path::{Path, RootedPath};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// An error from a [`Decider`] — a human-readable description carrying
/// the name of the procedure that failed.
#[derive(Debug)]
pub struct DeciderError {
    /// Which procedure failed.
    pub decider: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeciderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.decider, self.message)
    }
}

impl std::error::Error for DeciderError {}

/// A decision procedure for NFD implication: does `Σ ⊨ goal` hold over
/// `schema` (in the no-empty-sets regime)?
///
/// All implementations are sound and complete on their supported inputs,
/// so any two must agree wherever both apply — a fact the differential
/// test suite exercises.
pub trait Decider {
    /// A short stable name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Decides `Σ ⊨ goal` under a resource [`Budget`]. Running out of
    /// budget is reported as [`Verdict::Exhausted`] — an honest "don't
    /// know yet", never a wrong answer.
    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError>;

    /// Decides `Σ ⊨ goal` under the standard budget, turning exhaustion
    /// (which the standard budget only reaches on pathological inputs)
    /// into a [`DeciderError`].
    fn implies(&self, schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, DeciderError> {
        match self.decide(schema, sigma, goal, &Budget::standard())? {
            Verdict::Implied => Ok(true),
            Verdict::NotImplied => Ok(false),
            Verdict::Exhausted(r) => Err(DeciderError {
                decider: self.name(),
                message: format!("resources exhausted: {r}"),
            }),
        }
    }
}

/// The axiomatic saturation engine (Theorem 3.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Saturation;

impl Decider for Saturation {
    fn name(&self) -> &'static str {
        "saturation"
    }

    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError> {
        let err = |e: CoreError| DeciderError {
            decider: "saturation",
            message: e.to_string(),
        };
        let engine =
            match Engine::with_budget(schema, sigma, EmptySetPolicy::Forbidden, budget.clone()) {
                Ok(e) => e,
                Err(CoreError::Exhausted(r)) => return Ok(Verdict::Exhausted(r)),
                Err(e) => return Err(err(e)),
            };
        match engine.implies(goal) {
            Ok(b) => Ok(Verdict::from_bool(b)),
            Err(CoreError::Exhausted(r)) => Ok(Verdict::Exhausted(r)),
            Err(e) => Err(err(e)),
        }
    }
}

/// The nested tableau chase of [`nfd_chase`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Chase;

impl Decider for Chase {
    fn name(&self) -> &'static str {
        "chase"
    }

    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError> {
        match nfd_chase::chase_with(schema, sigma, goal, budget) {
            Ok(run) => Ok(Verdict::from_bool(run.implied)),
            Err(nfd_chase::ChaseError::Exhausted(r))
            | Err(nfd_chase::ChaseError::Core(CoreError::Exhausted(r))) => {
                Ok(Verdict::Exhausted(r))
            }
            Err(e) => Err(DeciderError {
                decider: "chase",
                message: e.to_string(),
            }),
        }
    }
}

/// The model-theoretic route: build the Appendix A universal witness for
/// `goal.base:[goal.lhs → ·]` and evaluate the Section 2.2 logic
/// translation of the goal on it. By Lemma A.1 the witness satisfies Σ
/// and violates exactly the non-implied goals, so evaluation *is*
/// decision. Requires infinite base domains (schemas using `bool` are
/// rejected, as in the construction itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct LogicEval;

impl Decider for LogicEval {
    fn name(&self) -> &'static str {
        "logic-eval"
    }

    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError> {
        let err = |m: String| DeciderError {
            decider: "logic-eval",
            message: m,
        };
        let engine =
            match Engine::with_budget(schema, sigma, EmptySetPolicy::Forbidden, budget.clone()) {
                Ok(e) => e,
                Err(CoreError::Exhausted(r)) => return Ok(Verdict::Exhausted(r)),
                Err(e) => return Err(err(e.to_string())),
            };
        let built = match construct::counterexample(&engine, &goal.base, goal.lhs()) {
            Ok(b) => b,
            Err(CoreError::Exhausted(r)) => return Ok(Verdict::Exhausted(r)),
            Err(e) => return Err(err(e.to_string())),
        };
        let formula = translate_nfd(schema, &goal.base, goal.lhs(), &goal.rhs)
            .map_err(|e| err(e.to_string()))?;
        match eval_budgeted(&built.instance, &formula, budget) {
            Ok(b) => Ok(Verdict::from_bool(b)),
            Err(EvalError::Exhausted(r)) => Ok(Verdict::Exhausted(r)),
            Err(e) => Err(err(e.to_string())),
        }
    }
}

/// Every built-in decision procedure, for differential testing.
pub fn all_deciders() -> Vec<Box<dyn Decider>> {
    vec![Box::new(Saturation), Box::new(Chase), Box::new(LogicEval)]
}

/// What one decider did during a [`Session::implies_with`] cascade.
#[derive(Clone, Debug)]
pub enum AttemptOutcome {
    /// The decider produced a verdict: `true` = implied.
    Answered(bool),
    /// The decider ran out of budget before finishing.
    Exhausted(ResourceReport),
    /// The decider was not run, with the reason (e.g. it is only sound
    /// under the no-empty-sets policy).
    Skipped(String),
    /// The decider panicked or failed internally; the panic was contained
    /// at the session boundary.
    Failed(String),
}

/// One entry of a [`Decision`]'s cascade log.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// The decider's stable name (`"saturation"`, `"chase"`,
    /// `"logic-eval"`).
    pub decider: &'static str,
    /// What happened.
    pub outcome: AttemptOutcome,
    /// The decider's characteristic work counter, when it finished:
    /// derived dependencies for saturation, chase steps for the chase.
    pub cost: Option<u64>,
}

/// The result of a budgeted implication query: the final verdict plus the
/// full log of which deciders ran, in order, and how each fared.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The overall verdict — the first decider to answer wins; if none
    /// answered, the first exhaustion report.
    pub verdict: Verdict,
    /// The cascade log, in execution order.
    pub attempts: Vec<Attempt>,
}

impl Decision {
    /// The name of the decider that produced the verdict, if any did.
    pub fn answered_by(&self) -> Option<&'static str> {
        self.attempts.iter().find_map(|a| match a.outcome {
            AttemptOutcome::Answered(_) => Some(a.decider),
            _ => None,
        })
    }
}

/// Renders a contained panic payload for error reporting.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A compiled `(Schema, Σ)` serving unlimited queries.
///
/// Construction interns every path of every relation into dense
/// [`SchemaTables`], normalizes Σ to simple form and saturates the
/// per-relation dependency pools — once. Each query afterwards is a
/// bitset fixed point over the cached state.
///
/// ```
/// use nfd::session::Session;
/// use nfd_core::Nfd;
/// use nfd_model::Schema;
///
/// let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
/// let sigma = nfd::core::nfd::parse_set(&schema, "R:[A -> B]; R:[B -> C];").unwrap();
/// let session = Session::new(&schema, &sigma).unwrap();
/// assert!(session.implies_text("R:[A -> C]").unwrap());
/// assert!(!session.implies_text("R:[C -> A]").unwrap());
/// ```
pub struct Session<'s> {
    schema: &'s Schema,
    engine: Engine<'s>,
}

impl<'s> Session<'s> {
    /// Compiles a session under [`EmptySetPolicy::Forbidden`] (the
    /// paper's Theorem 3.1 regime).
    pub fn new(schema: &'s Schema, sigma: &[Nfd]) -> Result<Session<'s>, CoreError> {
        Session::with_policy(schema, sigma, EmptySetPolicy::Forbidden)
    }

    /// Compiles a session under the given empty-set policy
    /// (Section 3.2).
    pub fn with_policy(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
    ) -> Result<Session<'s>, CoreError> {
        Session::with_budget(schema, sigma, policy, Budget::standard())
    }

    /// Compiles a session under an explicit resource [`Budget`]. The
    /// budget governs compilation (pool growth, deadline, cancellation)
    /// and every subsequent query served by the cached engine; running
    /// out surfaces as [`CoreError::Exhausted`], never a wrong answer.
    pub fn with_budget(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
    ) -> Result<Session<'s>, CoreError> {
        let engine = catch_unwind(AssertUnwindSafe(|| {
            Engine::with_budget(schema, sigma, policy, budget)
        }))
        .map_err(|p| {
            CoreError::Internal(format!("engine build panicked: {}", panic_message(p)))
        })??;
        Ok(Session { schema, engine })
    }

    /// Re-compiles this session's Σ under a different empty-set policy,
    /// reusing the already-compiled path tables (schema interning is not
    /// repeated; only saturation runs again).
    pub fn reconfigure(&self, policy: EmptySetPolicy) -> Result<Session<'s>, CoreError> {
        let engine = Engine::with_tables(
            self.schema,
            self.engine.tables().clone(),
            &self.engine.sigma,
            policy,
            self.engine.budget().clone(),
        )?;
        Ok(Session {
            schema: self.schema,
            engine,
        })
    }

    /// The schema this session reasons over.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }

    /// The dependency set Σ the session was compiled from.
    pub fn sigma(&self) -> &[Nfd] {
        &self.engine.sigma
    }

    /// The compiled path tables (shared, cheap to clone).
    pub fn tables(&self) -> &SchemaTables {
        self.engine.tables()
    }

    /// The underlying saturated engine, for APIs that take one directly
    /// (proof replay, counterexample construction, analyses).
    pub fn engine(&self) -> &Engine<'s> {
        &self.engine
    }

    /// Does Σ imply `goal`? One chained bitset fixed point over the
    /// cached saturation.
    pub fn implies(&self, goal: &Nfd) -> Result<bool, CoreError> {
        self.engine.implies(goal)
    }

    /// Parses `text` as an NFD over the session schema and decides it.
    pub fn implies_text(&self, text: &str) -> Result<bool, CoreError> {
        let goal = Nfd::parse(self.schema, text)?;
        self.implies(&goal)
    }

    /// Decides `Σ ⊨ goal` under an explicit [`Budget`], falling back
    /// through the decision procedures: **saturation** first (rebuilt over
    /// the cached path tables so the query budget governs pool growth),
    /// then the **chase**, then **logic-eval**. The first decider to
    /// answer wins; one that exhausts its budget or panics (contained
    /// here — the session boundary is panic-free) yields to the next.
    ///
    /// The chase and logic-eval are only sound in the no-empty-sets
    /// regime, so under any other [`EmptySetPolicy`] they are skipped
    /// rather than risk a wrong verdict.
    ///
    /// Returns the final [`Verdict`] plus the full cascade log. `Err` is
    /// reserved for invalid input (a goal that does not validate against
    /// the schema) and the can't-happen case where every decider failed
    /// without exhausting.
    pub fn implies_with(&self, goal: &Nfd, budget: &Budget) -> Result<Decision, CoreError> {
        goal.validate(self.schema)?;
        let forbidden = *self.engine.policy() == EmptySetPolicy::Forbidden;
        let mut attempts: Vec<Attempt> = Vec::new();

        let run = |name: &'static str,
                   f: &mut dyn FnMut() -> Result<(Verdict, Option<u64>), String>|
         -> Attempt {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(Ok((Verdict::Implied, cost))) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Answered(true),
                    cost,
                },
                Ok(Ok((Verdict::NotImplied, cost))) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Answered(false),
                    cost,
                },
                Ok(Ok((Verdict::Exhausted(r), cost))) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Exhausted(r),
                    cost,
                },
                Ok(Err(msg)) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Failed(msg),
                    cost: None,
                },
                Err(payload) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Failed(format!(
                        "panicked: {}",
                        panic_message(payload)
                    )),
                    cost: None,
                },
            }
        };

        // 1. Saturation, re-governed by the query budget but reusing the
        //    session's interned path tables.
        attempts.push(run("saturation", &mut || {
            let engine = Engine::with_tables(
                self.schema,
                self.engine.tables().clone(),
                &self.engine.sigma,
                self.engine.policy().clone(),
                budget.clone(),
            );
            match engine {
                Ok(engine) => match engine.implies(goal) {
                    Ok(b) => Ok((Verdict::from_bool(b), Some(engine.pool_size() as u64))),
                    Err(CoreError::Exhausted(r)) => {
                        Ok((Verdict::Exhausted(r), Some(engine.pool_size() as u64)))
                    }
                    Err(e) => Err(e.to_string()),
                },
                Err(CoreError::Exhausted(r)) => Ok((Verdict::Exhausted(r), None)),
                Err(e) => Err(e.to_string()),
            }
        }));

        // 2 & 3. The independent deciders, as fallbacks.
        if !matches!(
            attempts.last().map(|a| &a.outcome),
            Some(AttemptOutcome::Answered(_))
        ) {
            if forbidden {
                attempts.push(run("chase", &mut || match nfd_chase::chase_with(
                    self.schema,
                    &self.engine.sigma,
                    goal,
                    budget,
                ) {
                    Ok(run) => Ok((Verdict::from_bool(run.implied), Some(run.steps as u64))),
                    Err(nfd_chase::ChaseError::Exhausted(r))
                    | Err(nfd_chase::ChaseError::Core(CoreError::Exhausted(r))) => {
                        Ok((Verdict::Exhausted(r), None))
                    }
                    Err(e) => Err(e.to_string()),
                }));
            } else {
                attempts.push(Attempt {
                    decider: "chase",
                    outcome: AttemptOutcome::Skipped(
                        "only sound under the no-empty-sets policy".into(),
                    ),
                    cost: None,
                });
            }
        }
        if !attempts
            .iter()
            .any(|a| matches!(a.outcome, AttemptOutcome::Answered(_)))
        {
            if forbidden {
                attempts.push(run("logic-eval", &mut || match LogicEval.decide(
                    self.schema,
                    &self.engine.sigma,
                    goal,
                    budget,
                ) {
                    Ok(v) => Ok((v, None)),
                    Err(e) => Err(e.to_string()),
                }));
            } else {
                attempts.push(Attempt {
                    decider: "logic-eval",
                    outcome: AttemptOutcome::Skipped(
                        "only sound under the no-empty-sets policy".into(),
                    ),
                    cost: None,
                });
            }
        }

        let answered = attempts.iter().find_map(|a| match a.outcome {
            AttemptOutcome::Answered(b) => Some(Verdict::from_bool(b)),
            _ => None,
        });
        let exhausted = attempts.iter().find_map(|a| match &a.outcome {
            AttemptOutcome::Exhausted(r) => Some(Verdict::Exhausted(r.clone())),
            _ => None,
        });
        match answered.or(exhausted) {
            Some(verdict) => Ok(Decision { verdict, attempts }),
            None => Err(CoreError::Internal(format!(
                "no decider answered: {}",
                attempts
                    .iter()
                    .map(|a| format!("{}: {:?}", a.decider, a.outcome))
                    .collect::<Vec<_>>()
                    .join("; ")
            ))),
        }
    }

    /// The dependency closure `(base, X, Σ)*` (Definition 3.1).
    pub fn closure(&self, base: &RootedPath, lhs: &[Path]) -> Result<Vec<RootedPath>, CoreError> {
        self.engine.closure(base, lhs)
    }

    /// Checks an instance against every NFD of Σ. The reports are in
    /// Σ order; `reports[i]` describes `self.sigma()[i]`.
    pub fn check(&self, instance: &Instance) -> Result<Vec<SatisfyReport>, CoreError> {
        self.engine
            .sigma
            .iter()
            .map(|nfd| satisfy::check(self.schema, instance, nfd))
            .collect()
    }

    /// Produces a replayable derivation certificate for `goal`, or `None`
    /// when the goal is not implied.
    pub fn prove(&self, goal: &Nfd) -> Result<Option<Proof>, CoreError> {
        proof::prove(&self.engine, goal)
    }

    /// Verifies a certificate against this session's Σ.
    pub fn verify(&self, pf: &Proof) -> Result<(), CoreError> {
        proof::verify(&self.engine, pf)
    }

    /// Candidate keys of `relation` up to `max_size` paths, by closure
    /// search over the cached saturation.
    pub fn candidate_keys(
        &self,
        relation: Label,
        max_size: usize,
    ) -> Result<Vec<Vec<Path>>, CoreError> {
        analysis::candidate_keys(&self.engine, relation, max_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::nfd::parse_set;

    fn course() -> (Schema, &'static str) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap();
        let sigma = "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
             Course:[books:isbn -> books:title];
             Course:students:[sid -> grade];
             Course:[students:sid -> students:age];
             Course:[time, students:sid -> cnum];";
        (schema, sigma)
    }

    #[test]
    fn session_serves_all_query_kinds() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        let s = Session::new(&schema, &sigma).unwrap();

        // implies — the paper's motivating question.
        assert!(s
            .implies_text("Course:[time, students:sid -> books]")
            .unwrap());
        assert!(!s.implies_text("Course:[time -> cnum]").unwrap());

        // closure.
        let cl = s
            .closure(
                &RootedPath::parse("Course").unwrap(),
                &[Path::parse("cnum").unwrap()],
            )
            .unwrap();
        assert!(cl.iter().any(|p| p.to_string() == "Course:time"));

        // prove + verify round-trip.
        let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
        let pf = s.prove(&goal).unwrap().expect("implied goals have proofs");
        s.verify(&pf).unwrap();
        assert!(s
            .prove(&Nfd::parse(&schema, "Course:[time -> cnum]").unwrap())
            .unwrap()
            .is_none());

        // check.
        let inst = Instance::parse(&schema, "Course = {};").unwrap();
        let reports = s.check(&inst).unwrap();
        assert_eq!(reports.len(), s.sigma().len());
        assert!(reports.iter().all(|r| r.holds));

        // keys.
        let keys = s.candidate_keys(Label::new("Course"), 2).unwrap();
        assert!(keys
            .iter()
            .any(|k| k.len() == 1 && k[0].to_string() == "cnum"));
    }

    #[test]
    fn reconfigure_reuses_tables() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B:C];").unwrap();
        let strict = Session::new(&schema, &sigma).unwrap();
        assert!(strict.implies_text("R:[A -> B:C]").unwrap());
        let pessimistic = strict.reconfigure(EmptySetPolicy::pessimistic()).unwrap();
        // Under empty-set pessimism the prefix rule loses its footing for
        // B, but the given dependency itself still holds.
        assert!(pessimistic.implies_text("R:[A -> B:C]").unwrap());
    }

    #[test]
    fn deciders_agree_on_the_worked_example() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        for goal_text in [
            "Course:[time, students:sid -> books]",
            "Course:[cnum -> students:age]",
            "Course:[time -> cnum]",
            "Course:[books:title -> books:isbn]",
        ] {
            let goal = Nfd::parse(&schema, goal_text).unwrap();
            let verdicts: Vec<(&'static str, bool)> = all_deciders()
                .iter()
                .map(|d| (d.name(), d.implies(&schema, &sigma, &goal).unwrap()))
                .collect();
            assert!(
                verdicts.windows(2).all(|w| w[0].1 == w[1].1),
                "deciders disagree on {goal_text}: {verdicts:?}"
            );
        }
    }
}
