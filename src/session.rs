//! Query sessions and the unified [`Decider`] interface.
//!
//! The repository grew three independent decision procedures for
//! `Σ ⊨ σ`:
//!
//! 1. **Saturation** — the eight-rule axiomatic engine of
//!    [`nfd_core::engine`] (sound and complete, Theorem 3.1);
//! 2. **Chase** — the nested tableau chase of [`nfd_chase`] (Section 4's
//!    future work, implemented for the no-empty-sets regime);
//! 3. **LogicEval** — the Appendix A counterexample construction combined
//!    with the Section 2.2 logic translation: build the universal witness
//!    instance for `x0:[X → ·]` and evaluate the translated goal on it.
//!
//! [`Decider`] puts the three behind one interface so differential tests
//! (and curious users) can run them against each other.
//!
//! [`Session`] is the amortizing front end: it compiles `(Schema, Σ)`
//! once — path tables, normalized dependency pool, full saturation — and
//! then serves unlimited [`implies`](Session::implies) /
//! [`closure`](Session::closure) / [`check`](Session::check) /
//! [`prove`](Session::prove) queries against the cached state. Building a
//! fresh [`Engine`] per query repeats that compilation every time; a
//! session pays it once (see `crates/bench/benches/session_amortized.rs`
//! for measurements).

use nfd_core::engine::Engine;
use nfd_core::proof::{self, Proof};
use nfd_core::{
    analysis, construct, satisfy, CacheStats, ClosureCache, CoreError, DeltaReport, EmptySetPolicy,
    Nfd, QueryTrace, SatisfyReport, SelectState, Tier, TierPreference,
    DEFAULT_CLOSURE_CACHE_CAPACITY,
};
use nfd_faults::fail_point;
use nfd_govern::{Budget, ResourceKind, ResourceReport, Verdict};
use nfd_logic::{eval_budgeted, translate_nfd, EvalError};
use nfd_model::{Instance, Label, Schema};
use nfd_path::table::SchemaTables;
use nfd_path::{Path, RootedPath};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// An error from a [`Decider`] — a human-readable description carrying
/// the name of the procedure that failed.
#[derive(Debug)]
pub struct DeciderError {
    /// Which procedure failed.
    pub decider: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for DeciderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.decider, self.message)
    }
}

impl std::error::Error for DeciderError {}

/// A decision procedure for NFD implication: does `Σ ⊨ goal` hold over
/// `schema` (in the no-empty-sets regime)?
///
/// All implementations are sound and complete on their supported inputs,
/// so any two must agree wherever both apply — a fact the differential
/// test suite exercises.
pub trait Decider {
    /// A short stable name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Decides `Σ ⊨ goal` under a resource [`Budget`]. Running out of
    /// budget is reported as [`Verdict::Exhausted`] — an honest "don't
    /// know yet", never a wrong answer.
    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError>;

    /// Decides `Σ ⊨ goal` under the standard budget, turning exhaustion
    /// (which the standard budget only reaches on pathological inputs)
    /// into a [`DeciderError`].
    fn implies(&self, schema: &Schema, sigma: &[Nfd], goal: &Nfd) -> Result<bool, DeciderError> {
        match self.decide(schema, sigma, goal, &Budget::standard())? {
            Verdict::Implied => Ok(true),
            Verdict::NotImplied => Ok(false),
            Verdict::Exhausted(r) => Err(DeciderError {
                decider: self.name(),
                message: format!("resources exhausted: {r}"),
            }),
        }
    }
}

/// The axiomatic saturation engine (Theorem 3.1).
#[derive(Clone, Copy, Debug, Default)]
pub struct Saturation;

impl Decider for Saturation {
    fn name(&self) -> &'static str {
        "saturation"
    }

    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError> {
        let err = |e: CoreError| DeciderError {
            decider: "saturation",
            message: e.to_string(),
        };
        let engine =
            match Engine::with_budget(schema, sigma, EmptySetPolicy::Forbidden, budget.clone()) {
                Ok(e) => e,
                Err(CoreError::Exhausted(r)) => return Ok(Verdict::Exhausted(r)),
                Err(e) => return Err(err(e)),
            };
        match engine.implies(goal) {
            Ok(b) => Ok(Verdict::from_bool(b)),
            Err(CoreError::Exhausted(r)) => Ok(Verdict::Exhausted(r)),
            Err(e) => Err(err(e)),
        }
    }
}

/// The nested tableau chase of [`nfd_chase`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Chase;

impl Decider for Chase {
    fn name(&self) -> &'static str {
        "chase"
    }

    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError> {
        match nfd_chase::chase_with(schema, sigma, goal, budget) {
            Ok(run) => Ok(Verdict::from_bool(run.implied)),
            Err(nfd_chase::ChaseError::Exhausted(r))
            | Err(nfd_chase::ChaseError::Core(CoreError::Exhausted(r))) => {
                Ok(Verdict::Exhausted(r))
            }
            Err(e) => Err(DeciderError {
                decider: "chase",
                message: e.to_string(),
            }),
        }
    }
}

/// The model-theoretic route: build the Appendix A universal witness for
/// `goal.base:[goal.lhs → ·]` and evaluate the Section 2.2 logic
/// translation of the goal on it. By Lemma A.1 the witness satisfies Σ
/// and violates exactly the non-implied goals, so evaluation *is*
/// decision. Requires infinite base domains (schemas using `bool` are
/// rejected, as in the construction itself).
#[derive(Clone, Copy, Debug, Default)]
pub struct LogicEval;

impl Decider for LogicEval {
    fn name(&self) -> &'static str {
        "logic-eval"
    }

    fn decide(
        &self,
        schema: &Schema,
        sigma: &[Nfd],
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Verdict, DeciderError> {
        let err = |m: String| DeciderError {
            decider: "logic-eval",
            message: m,
        };
        let engine =
            match Engine::with_budget(schema, sigma, EmptySetPolicy::Forbidden, budget.clone()) {
                Ok(e) => e,
                Err(CoreError::Exhausted(r)) => return Ok(Verdict::Exhausted(r)),
                Err(e) => return Err(err(e.to_string())),
            };
        let built = match construct::counterexample(&engine, &goal.base, goal.lhs()) {
            Ok(b) => b,
            Err(CoreError::Exhausted(r)) => return Ok(Verdict::Exhausted(r)),
            Err(e) => return Err(err(e.to_string())),
        };
        let formula = translate_nfd(schema, &goal.base, goal.lhs(), &goal.rhs)
            .map_err(|e| err(e.to_string()))?;
        match eval_budgeted(&built.instance, &formula, budget) {
            Ok(b) => Ok(Verdict::from_bool(b)),
            Err(EvalError::Exhausted(r)) => Ok(Verdict::Exhausted(r)),
            Err(e) => Err(err(e.to_string())),
        }
    }
}

/// Every built-in decision procedure, for differential testing.
pub fn all_deciders() -> Vec<Box<dyn Decider>> {
    vec![Box::new(Saturation), Box::new(Chase), Box::new(LogicEval)]
}

/// What one decider did during a [`Session::implies_with`] cascade.
#[derive(Clone, Debug, PartialEq)]
pub enum AttemptOutcome {
    /// The decider produced a verdict: `true` = implied.
    Answered(bool),
    /// The decider ran out of budget before finishing.
    Exhausted(ResourceReport),
    /// The decider was not run, with the reason (e.g. it is only sound
    /// under the no-empty-sets policy).
    Skipped(String),
    /// The decider panicked or failed internally; the panic was contained
    /// at the session boundary.
    Failed(String),
}

/// One entry of a [`Decision`]'s cascade log.
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// The decider's stable name (`"saturation"`, `"chase"`,
    /// `"logic-eval"`).
    pub decider: &'static str,
    /// What happened.
    pub outcome: AttemptOutcome,
    /// The decider's characteristic work counter, when it finished:
    /// derived dependencies for saturation, chase steps for the chase.
    pub cost: Option<u64>,
    /// Which retry round produced this attempt: 0 for the initial run,
    /// `n` for the `n`-th [`RetryPolicy`] retry. Always 0 outside the
    /// retrying entry points, so the log stays an honest record of
    /// exactly how many times each decider actually ran.
    pub round: u32,
}

/// The result of a budgeted implication query: the final verdict plus the
/// full log of which deciders ran, in order, and how each fared.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The overall verdict — the first decider to answer wins; if none
    /// answered, the first exhaustion report.
    pub verdict: Verdict,
    /// The cascade log, in execution order.
    pub attempts: Vec<Attempt>,
    /// How many closure-cache hits the session's shared [`ClosureCache`]
    /// served while producing this decision (summed over retry rounds).
    /// Cost metadata only: hits depend on what ran before — including
    /// sibling goals racing in a batch — so equality ignores this field,
    /// keeping batch results bit-identical at every thread count.
    pub cache_hits: u64,
    /// Which engine tier served the saturation attempt's closure query
    /// (`None` when saturation never chained: reflexivity answered, the
    /// build failed, or another decider produced the verdict). Like
    /// `cache_hits` this is cost metadata — promotion state depends on
    /// query history, including sibling goals racing in a batch — so
    /// equality ignores it.
    pub tier: Option<Tier>,
    /// True on the first decision a session produces after
    /// [`Session::reconfigure`] discarded the closure cache, the
    /// candidate-keys memo and the tier promotion counters — the signal
    /// that explains the latency cliff of re-warming them. Timing
    /// metadata (exactly one decision after the rebuild observes it, in
    /// racing batches an arbitrary one), so equality ignores it.
    pub caches_invalidated: bool,
}

impl PartialEq for Decision {
    fn eq(&self, other: &Decision) -> bool {
        // `cache_hits`, `tier` and `caches_invalidated` are deliberately
        // excluded: they are timing/ordering metadata, not part of the
        // decision's semantic content.
        self.verdict == other.verdict && self.attempts == other.attempts
    }
}

impl Decision {
    /// The name of the decider that produced the verdict, if any did.
    pub fn answered_by(&self) -> Option<&'static str> {
        self.attempts.iter().find_map(|a| match a.outcome {
            AttemptOutcome::Answered(_) => Some(a.decider),
            _ => None,
        })
    }
}

/// The result of [`Session::implies_batch`]: one result per goal, in
/// input order, plus where the batch stopped if it ran out of budget.
///
/// Each slot mirrors what a sequential [`Session::implies_with`] call on
/// that goal would return: `Ok(Decision)` normally, `Err` for a
/// goal-local failure — in practice always [`CoreError::Internal`], the
/// containment of a panic inside that goal's cascade. A goal-local
/// failure does **not** abort the batch or disturb its siblings; the
/// remaining goals are still decided and the session stays usable.
///
/// The vector is identical at every thread count (see `implies_batch` for
/// the argument): goals up to and including the first genuine exhaustion
/// carry exactly the decision a sequential loop would have produced, and
/// every later goal carries the canonical "cancelled by the batch"
/// decision.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchDecision {
    /// One result per input goal, in input order.
    pub decisions: Vec<Result<Decision, CoreError>>,
    /// The index of the first goal whose decision genuinely exhausted the
    /// budget (every later goal was cancelled), or `None` if the whole
    /// batch was decided.
    pub first_exhausted: Option<usize>,
}

impl BatchDecision {
    /// How many goals were decided `Implied`.
    pub fn implied_count(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d, Ok(d) if d.verdict == Verdict::Implied))
            .count()
    }

    /// How many goals ended `Exhausted` (including goals cancelled after
    /// the first exhaustion).
    pub fn exhausted_count(&self) -> usize {
        self.decisions
            .iter()
            .filter(|d| matches!(d, Ok(d) if d.verdict.is_exhausted()))
            .count()
    }

    /// How many goals failed internally (a contained panic inside that
    /// goal's cascade).
    pub fn failed_count(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_err()).count()
    }

    /// Did every goal come back `Implied`?
    pub fn all_implied(&self) -> bool {
        self.decisions
            .iter()
            .all(|d| matches!(d, Ok(d) if d.verdict == Verdict::Implied))
    }
}

/// The canonical decision recorded for goals the batch never (observably)
/// ran because an earlier goal exhausted the shared budget.
fn batch_cancelled_decision() -> Decision {
    let report = ResourceReport::counter(ResourceKind::Cancelled, 0, 0);
    Decision {
        verdict: Verdict::Exhausted(report.clone()),
        attempts: vec![Attempt {
            decider: "batch",
            outcome: AttemptOutcome::Exhausted(report),
            cost: None,
            round: 0,
        }],
        cache_hits: 0,
        tier: None,
        caches_invalidated: false,
    }
}

/// How the retrying entry points ([`Session::implies_retry`],
/// [`Session::implies_batch_retry`]) respond to an `Exhausted` verdict:
/// re-run under an escalated budget, up to a total attempt cap, so
/// exhaustion degrades gracefully instead of terminally. Cancellation is
/// never retried — a caller's stop request is final.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the initial one (values below 1 are
    /// treated as 1, i.e. no retries).
    pub max_attempts: u32,
    /// Multiplier applied to every finite counter limit — and to the
    /// timeout, re-armed from the moment of the retry — before each new
    /// attempt; see [`Budget::escalate`]. Factors ≤ 1 still grow each
    /// limit by one, so retries always make progress.
    pub budget_escalation_factor: f64,
    /// Fixed sleep between attempts (zero by default — the workloads are
    /// CPU-bound, so there is usually nothing to wait for).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts, 4× escalation and no
    /// backoff.
    pub fn new(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            budget_escalation_factor: 4.0,
            backoff: Duration::ZERO,
        }
    }

    /// Replaces the escalation factor.
    pub fn with_escalation(mut self, factor: f64) -> RetryPolicy {
        self.budget_escalation_factor = factor;
        self
    }

    /// Replaces the inter-attempt backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> RetryPolicy {
        self.backoff = backoff;
        self
    }

    /// Is this verdict worth a retry under an escalated budget? True for
    /// every exhaustion except an explicit cancellation.
    fn should_retry(&self, verdict: &Verdict) -> bool {
        matches!(verdict, Verdict::Exhausted(r) if r.kind != ResourceKind::Cancelled)
    }
}

impl Default for RetryPolicy {
    /// Three total attempts at 4× escalation, no backoff.
    fn default() -> RetryPolicy {
        RetryPolicy::new(3)
    }
}

/// Runs `f`, containing any panic as [`CoreError::Internal`] — the
/// session-boundary guarantee that no query can unwind into the caller.
fn contained<T>(what: &str, f: impl FnOnce() -> Result<T, CoreError>) -> Result<T, CoreError> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|p| {
        Err(CoreError::Internal(format!(
            "{what} panicked: {}",
            panic_message(p)
        )))
    })
}

/// Renders a contained panic payload for error reporting.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A compiled `(Schema, Σ)` serving unlimited queries.
///
/// Construction interns every path of every relation into dense
/// [`SchemaTables`], normalizes Σ to simple form and saturates the
/// per-relation dependency pools — once. Each query afterwards is a
/// bitset fixed point over the cached state.
///
/// ```
/// use nfd::session::Session;
/// use nfd_core::Nfd;
/// use nfd_model::Schema;
///
/// let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
/// let sigma = nfd::core::nfd::parse_set(&schema, "R:[A -> B]; R:[B -> C];").unwrap();
/// let session = Session::new(&schema, &sigma).unwrap();
/// assert!(session.implies_text("R:[A -> C]").unwrap());
/// assert!(!session.implies_text("R:[C -> A]").unwrap());
/// ```
pub struct Session<'s> {
    schema: &'s Schema,
    engine: Engine<'s>,
    /// Shared closure cache, consulted by the session engine and every
    /// query engine rebuilt over the cached tables. Scoped to one
    /// `(Σ, policy)` compilation — [`Session::reconfigure`] makes a fresh
    /// one — which is what makes the `(relation, LHS set, policy)` key of
    /// the cache sound without storing the policy per entry.
    cache: Arc<ClosureCache>,
    /// Memo of completed candidate-key sweeps, keyed by
    /// `(relation, max_size)`; thread count is deliberately not part of
    /// the key because results are bit-identical at every thread count.
    /// Only successful sweeps are memoized: exhaustion must re-run.
    keys_memo: Mutex<Vec<KeysMemoEntry>>,
    keys_memo_hits: AtomicU64,
    /// Shared tier-selection state (routing preference, cost model,
    /// per-relation promotion counters and built dense closures),
    /// attached to the resident engine and to every rebuilt query engine
    /// so promotion hysteresis survives per-query rebuilds. Scoped to one
    /// `(Σ, policy)` compilation exactly like `cache`;
    /// [`Session::reconfigure`] makes a fresh one.
    select: Arc<SelectState>,
    /// Latched true by [`Session::reconfigure`] on the session it
    /// returns; the first decision produced drains it into
    /// [`Decision::caches_invalidated`].
    caches_invalidated: AtomicBool,
}

/// One memoized candidate-key sweep: `(relation, max_size)` → keys.
type KeysMemoEntry = ((Label, usize), Vec<Vec<Path>>);

/// Bound on the candidate-keys memo (entries; each holds one relation's
/// full key list for one size cap, so a handful suffices).
const KEYS_MEMO_CAPACITY: usize = 16;

impl<'s> Session<'s> {
    /// Compiles a session under [`EmptySetPolicy::Forbidden`] (the
    /// paper's Theorem 3.1 regime).
    pub fn new(schema: &'s Schema, sigma: &[Nfd]) -> Result<Session<'s>, CoreError> {
        Session::with_policy(schema, sigma, EmptySetPolicy::Forbidden)
    }

    /// Compiles a session under the given empty-set policy
    /// (Section 3.2).
    pub fn with_policy(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
    ) -> Result<Session<'s>, CoreError> {
        Session::with_budget(schema, sigma, policy, Budget::standard())
    }

    /// Compiles a session under an explicit resource [`Budget`]. The
    /// budget governs compilation (pool growth, deadline, cancellation)
    /// and every subsequent query served by the cached engine; running
    /// out surfaces as [`CoreError::Exhausted`], never a wrong answer.
    pub fn with_budget(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
    ) -> Result<Session<'s>, CoreError> {
        Session::with_tiers(schema, sigma, policy, budget, TierPreference::Auto)
    }

    /// [`Session::with_budget`] with an explicit engine-tier routing
    /// preference — the session-level form of the CLI's `--engine` flag.
    /// [`TierPreference::Auto`] (what every other constructor uses)
    /// routes each query through the cost model with promotion to the
    /// dense tier on hot relations; `Fixed(t)` forces tier `t` for
    /// debugging and differential testing.
    pub fn with_tiers(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
        preference: TierPreference,
    ) -> Result<Session<'s>, CoreError> {
        let cache = Arc::new(ClosureCache::with_capacity(DEFAULT_CLOSURE_CACHE_CAPACITY));
        Session::with_tiers_cached(schema, sigma, policy, budget, preference, cache)
    }

    /// [`Session::with_tiers`] with a caller-supplied closure cache — the
    /// sharing hook behind `nfdtool serve`'s cross-tenant cache pool.
    ///
    /// Sharing one cache between sessions is sound exactly when they were
    /// compiled from the same `(schema, Σ, policy)` under the same build
    /// budget: engine builds are deterministic, so every such session
    /// saturates the identical pool and computes the identical closures —
    /// a hit only skips work another session already did bit-for-bit (see
    /// the soundness note on [`nfd_core::ClosureCache`]). Callers that
    /// mutate Σ afterwards must NOT share the cache (the serve layer
    /// gives mutated epochs a private one for this reason).
    pub fn with_tiers_cached(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
        preference: TierPreference,
        cache: Arc<ClosureCache>,
    ) -> Result<Session<'s>, CoreError> {
        let select = Arc::new(SelectState::new(preference));
        let engine = catch_unwind(AssertUnwindSafe(|| {
            Engine::with_budget(schema, sigma, policy, budget)
        }))
        .map_err(|p| CoreError::Internal(format!("engine build panicked: {}", panic_message(p))))??
        .with_closure_cache(Arc::clone(&cache))
        .with_engine_select(Arc::clone(&select));
        Ok(Session {
            schema,
            engine,
            cache,
            keys_memo: Mutex::new(Vec::new()),
            keys_memo_hits: AtomicU64::new(0),
            select,
            caches_invalidated: AtomicBool::new(false),
        })
    }

    /// Freezes this session's compiled state into a portable
    /// [`nfd_snap::Snapshot`]: schema and Σ source texts, the empty-set
    /// policy, the interned path-table matrices, the saturated pools
    /// with provenance, and the current contents of the warm closure
    /// cache. Pure export — the session is untouched, and the snapshot
    /// is deterministic for a given compiled state (cache contents
    /// excepted, which depend on query history). Encode with
    /// [`nfd_snap::encode`] and persist with [`nfd_snap::write_atomic`].
    pub fn freeze(&self) -> nfd_snap::Snapshot {
        crate::snapshot::freeze_parts(self.schema, &self.engine, &self.cache)
    }

    /// Rebuilds a session from a [`Session::freeze`] snapshot, skipping
    /// the saturation fixpoint — the warm-start path.
    ///
    /// The caller supplies the live `(schema, sigma, policy, budget,
    /// preference)` exactly as for [`Session::with_tiers`]; the snapshot
    /// must match them or thawing fails with a typed
    /// [`SnapError::Mismatch`] — the schema/Σ/policy texts are compared
    /// against the embedded ones, the path tables are recompiled and
    /// required to be bit-identical to the embedded matrices, the pools
    /// replay through the engine's own validated `add` path, and cache
    /// entries are range-checked before import. A rejected thaw leaves
    /// nothing behind: callers fall back to a fresh compile
    /// ([`Session::with_tiers`]) and the degradation is an event to
    /// report, not a failure. Thawed sessions are bit-identical to
    /// freshly compiled ones (proved by `tests/snapshot_differential.rs`).
    pub fn thaw(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
        preference: TierPreference,
        snapshot: &nfd_snap::Snapshot,
    ) -> Result<Session<'s>, nfd_snap::SnapError> {
        let cache = Arc::new(ClosureCache::with_capacity(DEFAULT_CLOSURE_CACHE_CAPACITY));
        Session::thaw_cached(schema, sigma, policy, budget, preference, snapshot, cache)
    }

    /// [`Session::thaw`] with a caller-supplied closure cache, under the
    /// same sharing contract as [`Session::with_tiers_cached`]. The
    /// snapshot's validated cache entries are imported *into* the shared
    /// cache — sound because they were computed over the same `(schema,
    /// Σ, policy)` the thaw verifies against.
    pub fn thaw_cached(
        schema: &'s Schema,
        sigma: &[Nfd],
        policy: EmptySetPolicy,
        budget: Budget,
        preference: TierPreference,
        snapshot: &nfd_snap::Snapshot,
        cache: Arc<ClosureCache>,
    ) -> Result<Session<'s>, nfd_snap::SnapError> {
        use nfd_snap::SnapError;
        let schema_text = schema.to_string();
        if snapshot.schema_text != schema_text {
            return Err(SnapError::Mismatch(
                "schema text differs from the snapshot's".to_string(),
            ));
        }
        if snapshot.sigma_text != crate::snapshot::render_sigma(sigma) {
            return Err(SnapError::Mismatch(
                "dependency set differs from the snapshot's".to_string(),
            ));
        }
        if snapshot.policy != crate::snapshot::policy_snap(&policy) {
            return Err(SnapError::Mismatch(
                "empty-set policy differs from the snapshot's".to_string(),
            ));
        }
        let tables = SchemaTables::new(schema)
            .map_err(|e| SnapError::Mismatch(format!("schema does not compile: {e}")))?;
        crate::snapshot::verify_tables(&tables, &snapshot.tables)?;
        let pools = crate::snapshot::frozen_pools(snapshot, schema)?;
        let imports = crate::snapshot::cache_entries(snapshot, schema, &tables)?;
        let select = Arc::new(SelectState::new(preference));
        let engine = catch_unwind(AssertUnwindSafe(|| {
            Engine::from_frozen(schema, tables, sigma, policy, budget, pools)
        }))
        .map_err(|p| {
            SnapError::Mismatch(format!("snapshot replay panicked: {}", panic_message(p)))
        })?
        .map_err(|e| SnapError::Mismatch(format!("snapshot replay rejected: {e}")))?
        .with_closure_cache(Arc::clone(&cache))
        .with_engine_select(Arc::clone(&select));
        cache.import(imports);
        Ok(Session {
            schema,
            engine,
            cache,
            keys_memo: Mutex::new(Vec::new()),
            keys_memo_hits: AtomicU64::new(0),
            select,
            caches_invalidated: AtomicBool::new(false),
        })
    }

    /// Re-compiles this session's Σ under a different empty-set policy,
    /// reusing the already-compiled path tables (schema interning is not
    /// repeated; only saturation runs again).
    pub fn reconfigure(&self, policy: EmptySetPolicy) -> Result<Session<'s>, CoreError> {
        // A fresh cache and memo: closures are policy-dependent, and the
        // cache key deliberately leaves the policy implicit in the cache's
        // scope (see the `cache` field docs). Tier promotion state is
        // policy-scoped for the same reason — dense closures are built
        // from the policy's saturated pool — so the counters reset and
        // every relation starts cold; the returned session's first
        // decision carries `caches_invalidated` to explain the re-warming
        // cliff.
        let cache = Arc::new(ClosureCache::with_capacity(DEFAULT_CLOSURE_CACHE_CAPACITY));
        let select = Arc::new(SelectState::new(self.select.preference()));
        let engine = Engine::with_tables(
            self.schema,
            self.engine.tables().clone(),
            &self.engine.sigma,
            policy,
            self.engine.budget().clone(),
        )?
        .with_closure_cache(Arc::clone(&cache))
        .with_engine_select(Arc::clone(&select));
        Ok(Session {
            schema: self.schema,
            engine,
            cache,
            keys_memo: Mutex::new(Vec::new()),
            keys_memo_hits: AtomicU64::new(0),
            select,
            caches_invalidated: AtomicBool::new(true),
        })
    }

    /// Adds `deps` to the session's Σ in order, maintaining the resident
    /// engine incrementally ([`nfd_core::delta`]): only the relations the
    /// deps name are re-saturated (bit-identical to a from-scratch
    /// compile over the extended Σ), and invalidation is scoped — the
    /// closure cache, dense rows, promotion counters and candidate-key
    /// memo drop their entries for the touched relations only, while
    /// every other relation's stay warm. The `caches_invalidated` latch
    /// is extended so the next decision reports the re-warming cliff.
    ///
    /// Deps apply one at a time; on the first failure (validation, budget
    /// exhaustion, injected fault) the already-applied prefix remains in
    /// force and the session stays fully consistent — each engine
    /// mutation is atomic, so there is never a stale hybrid.
    pub fn add_deps(&mut self, deps: &[Nfd]) -> Result<Vec<DeltaReport>, CoreError> {
        self.mutate_deps(deps, Engine::add_dep)
    }

    /// Removes `deps` from the session's Σ (first content match each),
    /// maintaining the resident engine incrementally via counting
    /// retraction — see [`Session::add_deps`] for the scoped-invalidation
    /// and prefix-on-failure contracts, which are identical.
    pub fn remove_deps(&mut self, deps: &[Nfd]) -> Result<Vec<DeltaReport>, CoreError> {
        self.mutate_deps(deps, Engine::remove_dep)
    }

    fn mutate_deps(
        &mut self,
        deps: &[Nfd],
        op: fn(&mut Engine<'s>, &Nfd) -> Result<DeltaReport, CoreError>,
    ) -> Result<Vec<DeltaReport>, CoreError> {
        let mut reports = Vec::with_capacity(deps.len());
        for dep in deps {
            // Panic containment mirrors the query entry points; the
            // engine rolls Σ back before a panic unwinds through here, so
            // converting it to an error cannot strand a half-mutation.
            let report = contained("mutate", || op(&mut self.engine, dep))?;
            let mut memo = match self.keys_memo.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            memo.retain(|((rel, _), _)| *rel != report.relation);
            drop(memo);
            self.caches_invalidated.store(true, Ordering::Relaxed);
            reports.push(report);
        }
        Ok(reports)
    }

    /// Hit/miss counters of the session's shared closure cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The session's closure cache handle — lets an embedder observe the
    /// cache a [`Session::with_tiers_cached`] pool shares, or hand it to
    /// the next compatible session.
    pub fn closure_cache(&self) -> &Arc<ClosureCache> {
        &self.cache
    }

    /// How many candidate-key sweeps were answered from the session memo.
    pub fn keys_memo_hits(&self) -> u64 {
        self.keys_memo_hits.load(Ordering::Relaxed)
    }

    /// The session's shared tier-selection state: routing preference,
    /// cost model and per-relation promotion observability
    /// ([`SelectState::queries`], [`SelectState::dense_built`]).
    pub fn select_state(&self) -> &SelectState {
        &self.select
    }

    /// The schema this session reasons over.
    pub fn schema(&self) -> &'s Schema {
        self.schema
    }

    /// The dependency set Σ the session was compiled from.
    pub fn sigma(&self) -> &[Nfd] {
        &self.engine.sigma
    }

    /// The compiled path tables (shared, cheap to clone).
    pub fn tables(&self) -> &SchemaTables {
        self.engine.tables()
    }

    /// The underlying saturated engine, for APIs that take one directly
    /// (proof replay, counterexample construction, analyses).
    pub fn engine(&self) -> &Engine<'s> {
        &self.engine
    }

    /// Does Σ imply `goal`? One chained bitset fixed point over the
    /// cached saturation. Panic-contained like every session entry point
    /// (`catch_unwind` is free until a panic actually unwinds, so the hot
    /// path does not pay for the guarantee).
    pub fn implies(&self, goal: &Nfd) -> Result<bool, CoreError> {
        contained("implies", || self.engine.implies(goal))
    }

    /// Parses `text` as an NFD over the session schema and decides it.
    pub fn implies_text(&self, text: &str) -> Result<bool, CoreError> {
        let goal = Nfd::parse(self.schema, text)?;
        self.implies(&goal)
    }

    /// Decides `Σ ⊨ goal` under an explicit [`Budget`], falling back
    /// through the decision procedures: **saturation** first (rebuilt over
    /// the cached path tables so the query budget governs pool growth),
    /// then the **chase**, then **logic-eval**. The first decider to
    /// answer wins; one that exhausts its budget or panics (contained
    /// here — the session boundary is panic-free) yields to the next.
    ///
    /// The chase and logic-eval are only sound in the no-empty-sets
    /// regime, so under any other [`EmptySetPolicy`] they are skipped
    /// rather than risk a wrong verdict.
    ///
    /// Returns the final [`Verdict`] plus the full cascade log. `Err` is
    /// reserved for invalid input (a goal that does not validate against
    /// the schema) and the can't-happen case where every decider failed
    /// without exhausting.
    pub fn implies_with(&self, goal: &Nfd, budget: &Budget) -> Result<Decision, CoreError> {
        goal.validate(self.schema)?;
        let saturation = self.build_query_engine(budget);
        self.cascade(goal, budget, saturation.as_ref())
    }

    /// [`Session::implies_with`] served from the session's *resident*
    /// compiled engine instead of a per-query rebuild — the amortized
    /// read path behind `nfdtool serve --workers N`.
    ///
    /// Engine builds are deterministic and query-time chaining consumes
    /// no budget counters (a closure-chain hit skips work but can never
    /// change a verdict or a counter-limited outcome — see
    /// `nfd_core::Engine::implies_queried`), so serving every goal from
    /// the one resident engine yields verdicts identical to
    /// [`Session::implies_with`] whenever `budget`'s counters are at
    /// least the session's build budget. The differences are exactly the
    /// ones [`Session::closure`] and [`Session::candidate_keys`] already
    /// accept by running on the resident engine: a *tighter* query
    /// budget's counters cannot retroactively exhaust an
    /// already-saturated pool, and the per-request deadline/cancellation
    /// is honoured at the cascade layer rather than inside saturation.
    pub fn implies_with_resident(
        &self,
        goal: &Nfd,
        budget: &Budget,
    ) -> Result<Decision, CoreError> {
        goal.validate(self.schema)?;
        let saturation = self.resident_saturation(budget);
        self.cascade(goal, budget, saturation.as_ref().map(|e| *e))
    }

    /// The resident engine as a cascade input: alive budgets serve from
    /// `self.engine`; a dead one (cancelled, past deadline) pre-renders
    /// the same exhausted saturation [`Attempt`] a per-query rebuild
    /// would have produced, so the cascade falls through identically.
    fn resident_saturation(&self, budget: &Budget) -> Result<&Engine<'s>, Attempt> {
        match budget.check_live() {
            Ok(()) => Ok(&self.engine),
            Err(r) => Err(Attempt {
                decider: "saturation",
                outcome: AttemptOutcome::Exhausted(r),
                cost: None,
                round: 0,
            }),
        }
    }

    /// Rebuilds the saturation engine over the session's cached path
    /// tables under a query budget. A failure is returned as the complete
    /// saturation [`Attempt`] it should appear as in a cascade log —
    /// engine builds are deterministic, so one build serves a whole batch
    /// and each goal replicates the same attempt.
    fn build_query_engine(&self, budget: &Budget) -> Result<Engine<'s>, Attempt> {
        match catch_unwind(AssertUnwindSafe(|| {
            Engine::with_tables(
                self.schema,
                self.engine.tables().clone(),
                &self.engine.sigma,
                self.engine.policy().clone(),
                budget.clone(),
            )
        })) {
            // Rebuilt query engines share the session cache and tier
            // state: builds are deterministic per (Σ, policy), so every
            // rebuild saturates the same pool, the cached closures remain
            // exact, and promotion counters (plus built dense closures)
            // carry over — the hysteresis that makes promotion stick.
            Ok(Ok(engine)) => Ok(engine
                .with_closure_cache(Arc::clone(&self.cache))
                .with_engine_select(Arc::clone(&self.select))),
            Ok(Err(CoreError::Exhausted(r))) => Err(Attempt {
                decider: "saturation",
                outcome: AttemptOutcome::Exhausted(r),
                cost: None,
                round: 0,
            }),
            Ok(Err(e)) => Err(Attempt {
                decider: "saturation",
                outcome: AttemptOutcome::Failed(e.to_string()),
                cost: None,
                round: 0,
            }),
            Err(payload) => Err(Attempt {
                decider: "saturation",
                outcome: AttemptOutcome::Failed(format!("panicked: {}", panic_message(payload))),
                cost: None,
                round: 0,
            }),
        }
    }

    /// The decider cascade for one (already validated) goal: saturation
    /// over the prebuilt query engine, then the chase, then logic-eval.
    fn cascade(
        &self,
        goal: &Nfd,
        budget: &Budget,
        saturation: Result<&Engine<'s>, &Attempt>,
    ) -> Result<Decision, CoreError> {
        let forbidden = *self.engine.policy() == EmptySetPolicy::Forbidden;
        let mut attempts: Vec<Attempt> = Vec::new();
        // Closure-cache hits and the serving tier observed by this
        // cascade (only saturation consults either). `Cell`s because the
        // recording happens inside the `catch_unwind`-wrapped attempt
        // closure.
        let cache_hits = Cell::new(0u64);
        let tier = Cell::new(None::<Tier>);

        let run = |name: &'static str,
                   f: &mut dyn FnMut() -> Result<(Verdict, Option<u64>), String>|
         -> Attempt {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(Ok((Verdict::Implied, cost))) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Answered(true),
                    cost,
                    round: 0,
                },
                Ok(Ok((Verdict::NotImplied, cost))) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Answered(false),
                    cost,
                    round: 0,
                },
                Ok(Ok((Verdict::Exhausted(r), cost))) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Exhausted(r),
                    cost,
                    round: 0,
                },
                Ok(Err(msg)) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Failed(msg),
                    cost: None,
                    round: 0,
                },
                Err(payload) => Attempt {
                    decider: name,
                    outcome: AttemptOutcome::Failed(format!(
                        "panicked: {}",
                        panic_message(payload)
                    )),
                    cost: None,
                    round: 0,
                },
            }
        };

        // 1. Saturation, re-governed by the query budget but reusing the
        //    session's interned path tables. The engine was prebuilt (and
        //    build failures pre-rendered) by `build_query_engine`.
        attempts.push(match saturation {
            Ok(engine) => run("saturation", &mut || {
                fail_point!(
                    "session::cascade_saturation",
                    Ok((Verdict::Exhausted(ResourceReport::injected()), None)),
                    budget.cancel_token()
                );
                match engine.implies_queried(goal) {
                    Ok((b, trace)) => {
                        if trace.cache_hit {
                            cache_hits.set(cache_hits.get() + 1);
                        }
                        tier.set(trace.tier);
                        Ok((Verdict::from_bool(b), Some(engine.pool_size() as u64)))
                    }
                    Err(CoreError::Exhausted(r)) => {
                        Ok((Verdict::Exhausted(r), Some(engine.pool_size() as u64)))
                    }
                    Err(e) => Err(e.to_string()),
                }
            }),
            Err(attempt) => (*attempt).clone(),
        });

        // 2 & 3. The independent deciders, as fallbacks.
        if !matches!(
            attempts.last().map(|a| &a.outcome),
            Some(AttemptOutcome::Answered(_))
        ) {
            if forbidden {
                attempts.push(run("chase", &mut || {
                    fail_point!(
                        "session::cascade_chase",
                        Ok((Verdict::Exhausted(ResourceReport::injected()), None)),
                        budget.cancel_token()
                    );
                    match nfd_chase::chase_with(self.schema, &self.engine.sigma, goal, budget) {
                        Ok(run) => Ok((Verdict::from_bool(run.implied), Some(run.steps as u64))),
                        Err(nfd_chase::ChaseError::Exhausted(r))
                        | Err(nfd_chase::ChaseError::Core(CoreError::Exhausted(r))) => {
                            Ok((Verdict::Exhausted(r), None))
                        }
                        Err(e) => Err(e.to_string()),
                    }
                }));
            } else {
                attempts.push(Attempt {
                    decider: "chase",
                    outcome: AttemptOutcome::Skipped(
                        "only sound under the no-empty-sets policy".into(),
                    ),
                    cost: None,
                    round: 0,
                });
            }
        }
        if !attempts
            .iter()
            .any(|a| matches!(a.outcome, AttemptOutcome::Answered(_)))
        {
            if forbidden {
                attempts.push(run("logic-eval", &mut || {
                    fail_point!(
                        "session::cascade_logic_eval",
                        Ok((Verdict::Exhausted(ResourceReport::injected()), None)),
                        budget.cancel_token()
                    );
                    match LogicEval.decide(self.schema, &self.engine.sigma, goal, budget) {
                        Ok(v) => Ok((v, None)),
                        Err(e) => Err(e.to_string()),
                    }
                }));
            } else {
                attempts.push(Attempt {
                    decider: "logic-eval",
                    outcome: AttemptOutcome::Skipped(
                        "only sound under the no-empty-sets policy".into(),
                    ),
                    cost: None,
                    round: 0,
                });
            }
        }

        let answered = attempts.iter().find_map(|a| match a.outcome {
            AttemptOutcome::Answered(b) => Some(Verdict::from_bool(b)),
            _ => None,
        });
        let exhausted = attempts.iter().find_map(|a| match &a.outcome {
            AttemptOutcome::Exhausted(r) => Some(Verdict::Exhausted(r.clone())),
            _ => None,
        });
        match answered.or(exhausted) {
            Some(verdict) => Ok(Decision {
                verdict,
                attempts,
                cache_hits: cache_hits.get(),
                tier: tier.get(),
                // Exactly one decision drains the latch — the swap is
                // atomic, so racing batch goals cannot double-report.
                caches_invalidated: self.caches_invalidated.swap(false, Ordering::Relaxed),
            }),
            None => Err(CoreError::Internal(format!(
                "no decider answered: {}",
                attempts
                    .iter()
                    .map(|a| format!("{}: {:?}", a.decider, a.outcome))
                    .collect::<Vec<_>>()
                    .join("; ")
            ))),
        }
    }

    /// Decides a whole batch of goals under one shared [`Budget`],
    /// sharded across `threads` workers (`0` = all available
    /// parallelism).
    ///
    /// The workers share this session's compiled tables and a single
    /// prebuilt query engine (builds are deterministic, so sharing one is
    /// indistinguishable from [`Session::implies_with`]'s per-goal
    /// rebuild). The budget's counters and deadline govern every worker;
    /// the pool additionally derives a [child cancellation
    /// token](nfd_govern::CancelToken::child) from the caller's, so the
    /// first goal to *genuinely* exhaust the budget stops the whole pool
    /// within one poll window without disturbing the caller's token.
    ///
    /// The result is identical at every thread count (and to a sequential
    /// `implies_with` loop) for counter-limited budgets:
    ///
    /// * goals strictly before the first genuine exhaustion are decided
    ///   by the deterministic cascade; any result contaminated by the
    ///   pool's own stop signal (an attempt cancelled while the caller's
    ///   token was untouched) is discarded and re-run sequentially under
    ///   the caller's budget;
    /// * the first genuinely exhausted goal keeps its decision, and every
    ///   goal after it gets the canonical "cancelled by the batch"
    ///   decision — even if a worker happened to finish it first, because
    ///   a sequential run would never have started it.
    ///
    /// Wall-clock deadlines and external cancellation remain
    /// timing-dependent, exactly as they are for sequential queries.
    pub fn implies_batch(
        &self,
        goals: &[Nfd],
        budget: &Budget,
        threads: usize,
    ) -> Result<BatchDecision, CoreError> {
        self.implies_batch_impl(goals, budget, threads, false)
    }

    /// [`Session::implies_batch`] served from the session's *resident*
    /// compiled engine — the batch form of
    /// [`Session::implies_with_resident`], with the same equivalence
    /// argument and the same caveats (a tighter query budget's counters
    /// do not re-govern the already-saturated pool; deadlines and
    /// cancellation are honoured at the cascade layer). The batch
    /// normalization contract (deterministic cutoff, taint re-runs) is
    /// identical; re-runs also serve from the resident engine.
    pub fn implies_batch_resident(
        &self,
        goals: &[Nfd],
        budget: &Budget,
        threads: usize,
    ) -> Result<BatchDecision, CoreError> {
        self.implies_batch_impl(goals, budget, threads, true)
    }

    fn implies_batch_impl(
        &self,
        goals: &[Nfd],
        budget: &Budget,
        threads: usize,
        resident: bool,
    ) -> Result<BatchDecision, CoreError> {
        // Validate everything up front so input errors are deterministic
        // (always the lowest offending index) regardless of scheduling.
        for goal in goals {
            goal.validate(self.schema)?;
        }

        // Pool-scoped stop signal layered over the caller's token: first
        // genuine exhaustion (or a fatal error) cancels the pool but not
        // the caller.
        let pool_token = budget.cancel_token().child();
        let worker_budget = budget.clone().with_cancel(pool_token.clone());
        let built;
        let resident_sat;
        let saturation: Result<&Engine<'s>, &Attempt> = if resident {
            resident_sat = self.resident_saturation(&worker_budget);
            resident_sat.as_ref().map(|e| *e)
        } else {
            built = self.build_query_engine(&worker_budget);
            built.as_ref()
        };

        let pool = || {
            nfd_par::map_indexed_while(
                goals.len(),
                threads,
                || !pool_token.is_cancelled(),
                |i| {
                    // Panics inside one goal's cascade are contained
                    // *here*, per goal: the slot carries `Internal`, the
                    // siblings keep running, and the pool stays usable.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        fail_point!(
                            "session::batch_goal",
                            Err(CoreError::Exhausted(ResourceReport::injected())),
                            worker_budget.cancel_token()
                        );
                        self.cascade(&goals[i], &worker_budget, saturation)
                    }))
                    .unwrap_or_else(|p| {
                        Err(CoreError::Internal(format!(
                            "batch worker panicked: {}",
                            panic_message(p)
                        )))
                    });
                    // Fail fast: a genuine exhaustion (not our own pool
                    // stop propagating) ends the batch. This is purely a
                    // promptness signal — the normalization pass below
                    // re-derives the cutoff deterministically. Goal-local
                    // internal failures do NOT stop the pool.
                    let stop = match &result {
                        Ok(d) => match &d.verdict {
                            Verdict::Exhausted(r) => {
                                r.kind != ResourceKind::Cancelled
                                    || budget.cancel_token().is_cancelled()
                            }
                            _ => false,
                        },
                        Err(_) => false,
                    };
                    if stop {
                        pool_token.cancel();
                    }
                    result
                },
            )
        };
        // A second containment layer for the pool machinery itself
        // (spawn/reassembly): a panic there aborts the whole batch as one
        // `Internal` error, after every worker has been joined.
        let raw: Vec<Option<Result<Decision, CoreError>>> = catch_unwind(AssertUnwindSafe(pool))
            .map_err(|p| {
                CoreError::Internal(format!("batch pool panicked: {}", panic_message(p)))
            })?;

        // Normalize to the sequential result, walking in input order. A
        // decision is tainted if any attempt was cancelled by the pool's
        // own stop signal; tainted or never-started goals before the
        // cutoff re-run sequentially under the caller's budget.
        let user_cancelled = budget.cancel_token().is_cancelled();
        let tainted = |d: &Decision| {
            !user_cancelled
                && d.attempts.iter().any(|a| {
                    matches!(&a.outcome,
                        AttemptOutcome::Exhausted(r) if r.kind == ResourceKind::Cancelled)
                })
        };
        let mut rerun_saturation: Option<Result<Engine<'s>, Attempt>> = None;
        let mut decisions: Vec<Result<Decision, CoreError>> = Vec::with_capacity(goals.len());
        let mut first_exhausted: Option<usize> = None;
        for (i, slot) in raw.into_iter().enumerate() {
            if first_exhausted.is_some() {
                decisions.push(Ok(batch_cancelled_decision()));
                continue;
            }
            let decision = match slot {
                Some(Ok(d)) if !tainted(&d) => Ok(d),
                // A goal-local failure (contained panic) keeps its slot;
                // the rest of the batch proceeds normally.
                Some(Err(e)) => Err(e),
                // Tainted by the pool stop, or never dispatched: re-run
                // under the caller's budget, exactly as a sequential
                // sweep would have run it. Builds are deterministic, so
                // one re-run engine serves every re-run goal.
                _ => {
                    if resident {
                        let sat = self.resident_saturation(budget);
                        self.cascade(&goals[i], budget, sat.as_ref().map(|e| *e))
                    } else {
                        let saturation =
                            rerun_saturation.get_or_insert_with(|| self.build_query_engine(budget));
                        self.cascade(&goals[i], budget, saturation.as_ref())
                    }
                }
            };
            // Post-normalization, an Exhausted verdict is genuine: a
            // cancellation report here means the caller's own token.
            if matches!(&decision, Ok(d) if d.verdict.is_exhausted()) {
                first_exhausted = Some(i);
            }
            decisions.push(decision);
        }
        Ok(BatchDecision {
            decisions,
            first_exhausted,
        })
    }

    /// [`Session::implies_with`], retried under escalating budgets when
    /// the verdict comes back `Exhausted`: each retry multiplies every
    /// finite limit (and re-arms any timeout) by the policy's escalation
    /// factor, up to `max_attempts` total runs. Cancellation is honoured
    /// immediately and never retried.
    ///
    /// The returned [`Decision`] concatenates the cascade logs of every
    /// run, with [`Attempt::round`] recording which run produced each
    /// entry — the report stays an honest account of all work done, not
    /// just the last attempt.
    pub fn implies_retry(
        &self,
        goal: &Nfd,
        budget: &Budget,
        policy: &RetryPolicy,
    ) -> Result<Decision, CoreError> {
        let mut budget = budget.clone();
        let mut log: Vec<Attempt> = Vec::new();
        let mut hits: u64 = 0;
        let mut invalidated = false;
        let max_attempts = policy.max_attempts.max(1);
        let mut round: u32 = 0;
        loop {
            let mut decision = self.implies_with(goal, &budget)?;
            for attempt in &mut decision.attempts {
                attempt.round = round;
            }
            log.append(&mut decision.attempts);
            hits += decision.cache_hits;
            invalidated |= decision.caches_invalidated;
            round += 1;
            if !policy.should_retry(&decision.verdict)
                || round >= max_attempts
                || budget.cancel_token().is_cancelled()
            {
                return Ok(Decision {
                    verdict: decision.verdict,
                    attempts: log,
                    cache_hits: hits,
                    tier: decision.tier,
                    caches_invalidated: invalidated,
                });
            }
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff);
            }
            budget = budget.escalate(policy.budget_escalation_factor);
        }
    }

    /// [`Session::implies_batch`] with per-goal retry: after the parallel
    /// batch completes, every goal that came back `Exhausted` — including
    /// goals the batch cancelled after its first exhaustion — is re-run
    /// sequentially via [`Session::implies_retry`].
    ///
    /// Goals the batch cancelled before (observably) running them retry
    /// from the caller's base budget with the full policy; goals that
    /// genuinely exhausted start one escalation up with one fewer
    /// attempt, since the batch itself was their first try. Merged
    /// cascade logs keep every attempt, with [`Attempt::round`] counting
    /// from the in-batch run. `first_exhausted` is recomputed over the
    /// final decisions: the first goal still exhausted after retries, if
    /// any.
    ///
    /// If the caller's token is cancelled, pending retries are skipped —
    /// the batch result is returned as-is.
    pub fn implies_batch_retry(
        &self,
        goals: &[Nfd],
        budget: &Budget,
        threads: usize,
        policy: &RetryPolicy,
    ) -> Result<BatchDecision, CoreError> {
        let mut batch = self.implies_batch(goals, budget, threads)?;
        let max_attempts = policy.max_attempts.max(1);
        if max_attempts <= 1 {
            return Ok(batch);
        }
        for (i, slot) in batch.decisions.iter_mut().enumerate() {
            let (retryable, from_scratch) = match &*slot {
                Ok(first) => {
                    let from_scratch = first.verdict.is_exhausted()
                        && first.attempts.iter().all(|a| a.decider == "batch");
                    (
                        from_scratch || policy.should_retry(&first.verdict),
                        from_scratch,
                    )
                }
                // A worker-level exhaustion (no decision produced at all)
                // is as retryable as an exhausted verdict; internal
                // failures are not exhaustion and are left in place.
                Err(CoreError::Exhausted(r)) => (r.kind != ResourceKind::Cancelled, false),
                Err(_) => (false, false),
            };
            if !retryable {
                continue;
            }
            if budget.cancel_token().is_cancelled() {
                break;
            }
            if !policy.backoff.is_zero() {
                std::thread::sleep(policy.backoff);
            }
            let (start_budget, sub_policy) = if from_scratch {
                (budget.clone(), policy.clone())
            } else {
                (
                    budget.escalate(policy.budget_escalation_factor),
                    RetryPolicy {
                        max_attempts: max_attempts - 1,
                        ..policy.clone()
                    },
                )
            };
            let mut retried = self.implies_retry(&goals[i], &start_budget, &sub_policy)?;
            for attempt in &mut retried.attempts {
                attempt.round += 1;
            }
            let (mut attempts, prior_hits, prior_invalidated) = match slot {
                Ok(first) => (
                    std::mem::take(&mut first.attempts),
                    first.cache_hits,
                    first.caches_invalidated,
                ),
                Err(_) => (Vec::new(), 0, false),
            };
            attempts.extend(retried.attempts);
            *slot = Ok(Decision {
                verdict: retried.verdict,
                attempts,
                cache_hits: prior_hits + retried.cache_hits,
                tier: retried.tier,
                caches_invalidated: prior_invalidated || retried.caches_invalidated,
            });
        }
        batch.first_exhausted = batch
            .decisions
            .iter()
            .position(|d| matches!(d, Ok(d) if d.verdict.is_exhausted()));
        Ok(batch)
    }

    /// The dependency closure `(base, X, Σ)*` (Definition 3.1).
    pub fn closure(&self, base: &RootedPath, lhs: &[Path]) -> Result<Vec<RootedPath>, CoreError> {
        contained("closure", || self.engine.closure(base, lhs))
    }

    /// [`Session::closure`] plus the [`QueryTrace`] of the chaining run —
    /// which engine tier served it and whether it came from the cache.
    pub fn closure_traced(
        &self,
        base: &RootedPath,
        lhs: &[Path],
    ) -> Result<(Vec<RootedPath>, QueryTrace), CoreError> {
        contained("closure", || self.engine.closure_traced(base, lhs))
    }

    /// Checks an instance against every NFD of Σ. The reports are in
    /// Σ order; `reports[i]` describes `self.sigma()[i]`.
    pub fn check(&self, instance: &Instance) -> Result<Vec<SatisfyReport>, CoreError> {
        contained("check", || {
            self.engine
                .sigma
                .iter()
                .map(|nfd| satisfy::check(self.schema, instance, nfd))
                .collect()
        })
    }

    /// Produces a replayable derivation certificate for `goal`, or `None`
    /// when the goal is not implied.
    pub fn prove(&self, goal: &Nfd) -> Result<Option<Proof>, CoreError> {
        contained("prove", || proof::prove(&self.engine, goal))
    }

    /// Verifies a certificate against this session's Σ.
    pub fn verify(&self, pf: &Proof) -> Result<(), CoreError> {
        contained("verify", || proof::verify(&self.engine, pf))
    }

    /// Candidate keys of `relation` up to `max_size` paths, by closure
    /// search over the cached saturation. Completed sweeps are memoized
    /// per `(relation, max_size)`, so repeating a query is O(1).
    pub fn candidate_keys(
        &self,
        relation: Label,
        max_size: usize,
    ) -> Result<Vec<Vec<Path>>, CoreError> {
        self.candidate_keys_threaded(relation, max_size, 1)
    }

    /// [`Session::candidate_keys`] sharded across `threads` workers
    /// (`0` = all available parallelism); results and exhaustion reports
    /// are identical at every thread count — which is also why the memo
    /// key ignores the thread count.
    pub fn candidate_keys_threaded(
        &self,
        relation: Label,
        max_size: usize,
        threads: usize,
    ) -> Result<Vec<Vec<Path>>, CoreError> {
        if let Some(keys) = self.keys_memo_get(relation, max_size) {
            return Ok(keys);
        }
        let keys = contained("candidate_keys", || {
            analysis::candidate_keys_threaded(&self.engine, relation, max_size, threads)
        })?;
        self.keys_memo_put(relation, max_size, &keys);
        Ok(keys)
    }

    fn keys_memo_get(&self, relation: Label, max_size: usize) -> Option<Vec<Vec<Path>>> {
        let mut memo = match self.keys_memo.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let pos = memo.iter().position(|(k, _)| *k == (relation, max_size))?;
        // Move-to-front LRU: the memo is tiny, so a rotate is cheap.
        let entry = memo.remove(pos);
        let keys = entry.1.clone();
        memo.insert(0, entry);
        drop(memo);
        self.keys_memo_hits.fetch_add(1, Ordering::Relaxed);
        Some(keys)
    }

    fn keys_memo_put(&self, relation: Label, max_size: usize, keys: &[Vec<Path>]) {
        let mut memo = match self.keys_memo.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if memo.iter().all(|(k, _)| *k != (relation, max_size)) {
            memo.insert(0, ((relation, max_size), keys.to_vec()));
            memo.truncate(KEYS_MEMO_CAPACITY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfd_core::nfd::parse_set;

    fn course() -> (Schema, &'static str) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        )
        .unwrap();
        let sigma = "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
             Course:[books:isbn -> books:title];
             Course:students:[sid -> grade];
             Course:[students:sid -> students:age];
             Course:[time, students:sid -> cnum];";
        (schema, sigma)
    }

    #[test]
    fn session_serves_all_query_kinds() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        let s = Session::new(&schema, &sigma).unwrap();

        // implies — the paper's motivating question.
        assert!(s
            .implies_text("Course:[time, students:sid -> books]")
            .unwrap());
        assert!(!s.implies_text("Course:[time -> cnum]").unwrap());

        // closure.
        let cl = s
            .closure(
                &RootedPath::parse("Course").unwrap(),
                &[Path::parse("cnum").unwrap()],
            )
            .unwrap();
        assert!(cl.iter().any(|p| p.to_string() == "Course:time"));

        // prove + verify round-trip.
        let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
        let pf = s.prove(&goal).unwrap().expect("implied goals have proofs");
        s.verify(&pf).unwrap();
        assert!(s
            .prove(&Nfd::parse(&schema, "Course:[time -> cnum]").unwrap())
            .unwrap()
            .is_none());

        // check.
        let inst = Instance::parse(&schema, "Course = {};").unwrap();
        let reports = s.check(&inst).unwrap();
        assert_eq!(reports.len(), s.sigma().len());
        assert!(reports.iter().all(|r| r.holds));

        // keys.
        let keys = s.candidate_keys(Label::new("Course"), 2).unwrap();
        assert!(keys
            .iter()
            .any(|k| k.len() == 1 && k[0].to_string() == "cnum"));
    }

    #[test]
    fn reconfigure_reuses_tables() {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let sigma = parse_set(&schema, "R:[A -> B:C];").unwrap();
        let strict = Session::new(&schema, &sigma).unwrap();
        assert!(strict.implies_text("R:[A -> B:C]").unwrap());
        let pessimistic = strict.reconfigure(EmptySetPolicy::pessimistic()).unwrap();
        // Under empty-set pessimism the prefix rule loses its footing for
        // B, but the given dependency itself still holds.
        assert!(pessimistic.implies_text("R:[A -> B:C]").unwrap());
    }

    #[test]
    fn session_and_decisions_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session<'static>>();
        assert_send_sync::<Decision>();
        assert_send_sync::<BatchDecision>();
    }

    #[test]
    fn batch_matches_a_sequential_loop_at_every_thread_count() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        let s = Session::new(&schema, &sigma).unwrap();
        let goals: Vec<Nfd> = [
            "Course:[time, students:sid -> books]",
            "Course:[cnum -> students:age]",
            "Course:[time -> cnum]",
            "Course:[books:title -> books:isbn]",
            "Course:[cnum -> books:title]",
        ]
        .iter()
        .map(|t| Nfd::parse(&schema, t).unwrap())
        .collect();
        let budget = Budget::standard();
        let sequential: Vec<Result<Decision, CoreError>> = goals
            .iter()
            .map(|g| Ok(s.implies_with(g, &budget).unwrap()))
            .collect();
        for threads in [1, 2, 8] {
            let batch = s.implies_batch(&goals, &budget, threads).unwrap();
            assert_eq!(batch.decisions, sequential, "threads = {threads}");
            assert_eq!(batch.first_exhausted, None);
            let implied = sequential
                .iter()
                .filter(|d| matches!(d, Ok(d) if d.verdict == Verdict::Implied))
                .count();
            assert_eq!(batch.implied_count(), implied);
            assert_eq!(batch.failed_count(), 0);
            assert_eq!(
                batch.decisions[0].as_ref().unwrap().verdict,
                Verdict::Implied
            );
            assert!(!batch.all_implied());
        }
    }

    #[test]
    fn starved_batch_is_deterministic_and_never_flips_verdicts() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        let s = Session::new(&schema, &sigma).unwrap();
        let goals: Vec<Nfd> = [
            "Course:[time, students:sid -> books]",
            "Course:[time -> cnum]",
            "Course:[cnum -> students:age]",
        ]
        .iter()
        .map(|t| Nfd::parse(&schema, t).unwrap())
        .collect();
        let budget = Budget::limited(1);
        let reference = s.implies_batch(&goals, &budget, 1).unwrap();
        assert!(
            reference.exhausted_count() > 0,
            "a budget of 1 must starve the cascade"
        );
        assert_eq!(reference.first_exhausted, Some(0));
        for threads in [2, 8] {
            let batch = s.implies_batch(&goals, &budget, threads).unwrap();
            assert_eq!(batch, reference, "threads = {threads}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        let s = Session::new(&schema, &sigma).unwrap();
        let batch = s.implies_batch(&[], &Budget::standard(), 8).unwrap();
        assert!(batch.decisions.is_empty());
        assert_eq!(batch.first_exhausted, None);
        assert!(batch.all_implied());
    }

    #[test]
    fn deciders_agree_on_the_worked_example() {
        let (schema, sigma_text) = course();
        let sigma = parse_set(&schema, sigma_text).unwrap();
        for goal_text in [
            "Course:[time, students:sid -> books]",
            "Course:[cnum -> students:age]",
            "Course:[time -> cnum]",
            "Course:[books:title -> books:isbn]",
        ] {
            let goal = Nfd::parse(&schema, goal_text).unwrap();
            let verdicts: Vec<(&'static str, bool)> = all_deciders()
                .iter()
                .map(|d| (d.name(), d.implies(&schema, &sigma, &goal).unwrap()))
                .collect();
            assert!(
                verdicts.windows(2).all(|w| w[0].1 == w[1].1),
                "deciders disagree on {goal_text}: {verdicts:?}"
            );
        }
    }
}
