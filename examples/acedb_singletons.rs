//! AceDB-style schemas: every attribute is a set, empty sets model
//! optional data, and some sets must be (maximally) singletons.
//!
//! The paper singles out AceDB (Section 2.1) as the motivation for
//! reasoning about singleton sets: `x0:[x → x:A1], …, x0:[x → x:An]`
//! forces `x` to be empty or a singleton, and the singleton inference rule
//! lets the engine *derive* set-valuedness facts rather than assume them.
//!
//! Run with: `cargo run --example acedb_singletons`

use nfd::core::{check, nfd::parse_set, proof};
use nfd::model::render;
use nfd::prelude::*;

fn main() {
    // A gene catalogue in the AceDB spirit: every field is a set, sparse
    // by design. `name` should be a singleton per gene; `aliases` and
    // `papers` are genuinely multi-valued.
    let schema = Schema::parse(
        "Genes : { <gid: int,
                    name: {<text: string>},
                    aliases: {<text2: string>},
                    papers: {<pmid: int, year: int>}> };",
    )
    .unwrap();

    // Declaring "name is singleton" as NFDs: the whole gene row (keyed by
    // gid) determines every attribute of the name set.
    let sigma = parse_set(
        &schema,
        "Genes:[gid -> name:text];   # forces |name| ≤ 1 per gid
         Genes:[gid -> papers];      # the paper set is a function of gid
         Genes:papers:[pmid -> year];",
    )
    .unwrap();

    println!("Σ:");
    for nfd in &sigma {
        println!("  {nfd}");
    }

    // The engine derives that gid determines the name *set* itself — the
    // singleton rule in action (Section 2.1's R:[D → A:B], R:[D → A:C] ⟹
    // R:[D → A] observation, with a one-attribute set).
    let engine = Engine::new(&schema, &sigma).unwrap();
    let derived = Nfd::parse(&schema, "Genes:[gid -> name]").unwrap();
    println!("\nΣ ⊢ {derived}?  {}", engine.implies(&derived).unwrap());
    let pf = proof::prove(&engine, &derived).unwrap().unwrap();
    proof::verify(&engine, &pf).unwrap();
    println!("{pf}");

    // Not so for aliases: nothing constrains them.
    let not_derived = Nfd::parse(&schema, "Genes:[gid -> aliases]").unwrap();
    println!(
        "Σ ⊢ {not_derived}?  {}",
        engine.implies(&not_derived).unwrap()
    );

    // A conforming sparse instance: name empty (unknown) or singleton.
    let inst = Instance::parse(
        &schema,
        r#"Genes = {
            <gid: 1, name: {<text: "BRCA1">},
             aliases: {<text2: "IRIS">, <text2: "PSCP">},
             papers: {<pmid: 100, year: 1994>, <pmid: 101, year: 1995>}>,
            <gid: 2, name: {},
             aliases: {},
             papers: {<pmid: 102, year: 1998>}> };"#,
    )
    .unwrap();
    println!("Catalogue:\n{}", render::render_instance(&schema, &inst));
    for nfd in &sigma {
        println!(
            "  {} {nfd}",
            if check(&schema, &inst, nfd).unwrap().holds {
                "✓"
            } else {
                "✗"
            }
        );
    }

    // A two-name gene violates the singleton constraint…
    let bad = Instance::parse(
        &schema,
        r#"Genes = {
            <gid: 1, name: {<text: "BRCA1">, <text: "BRCA-one">},
             aliases: {}, papers: {}> };"#,
    )
    .unwrap();
    let r = check(&schema, &bad, &sigma[0]).unwrap();
    println!(
        "\ntwo names for gid 1: {} ({})",
        if r.holds { "accepted" } else { "rejected" },
        r.violation
            .map(|v| v.to_string())
            .unwrap_or_else(|| "no witness".into())
    );

    // Empty-set reasoning on sparse data. Two transitive chains through
    // the possibly-empty `papers` set:
    //
    //   (i)  gid → papers:pmid, papers:pmid → papers:year
    //        The intermediate FOLLOWS the conclusion (same traversals), so
    //        the chain is safe even when papers is empty — the paper's
    //        Definition 3.2 at work, no declaration needed.
    //   (ii) gid → papers:pmid, papers:pmid → aliases:text2
    //        The intermediate does NOT follow the conclusion: with papers
    //        empty the premises say nothing while the conclusion still
    //        bites (Example 3.2's trap). Only a NON-EMPTY declaration on
    //        papers restores the inference.
    let chain_sigma = parse_set(
        &schema,
        "Genes:[gid -> papers:pmid];
         Genes:[papers:pmid -> papers:year];
         Genes:[papers:pmid -> aliases:text2];",
    )
    .unwrap();
    let safe_goal = Nfd::parse(&schema, "Genes:[gid -> papers:year]").unwrap();
    let risky_goal = Nfd::parse(&schema, "Genes:[gid -> aliases:text2]").unwrap();
    let strict = Engine::new(&schema, &chain_sigma).unwrap();
    let sparse = Engine::with_policy(&schema, &chain_sigma, EmptySetPolicy::pessimistic()).unwrap();
    let declared = Engine::with_policy(
        &schema,
        &chain_sigma,
        EmptySetPolicy::non_empty([RootedPath::parse("Genes:papers").unwrap()]),
    )
    .unwrap();
    println!("\nChain (i): goal {safe_goal}");
    println!(
        "  assuming no empty sets anywhere:   {}",
        strict.implies(&safe_goal).unwrap()
    );
    println!(
        "  AceDB-style sparse data:           {} (intermediate follows the conclusion)",
        sparse.implies(&safe_goal).unwrap()
    );
    println!("Chain (ii): goal {risky_goal}");
    println!(
        "  assuming no empty sets anywhere:   {}",
        strict.implies(&risky_goal).unwrap()
    );
    println!(
        "  AceDB-style sparse data:           {}",
        sparse.implies(&risky_goal).unwrap()
    );
    println!(
        "  with `papers` declared non-empty:  {}",
        declared.implies(&risky_goal).unwrap()
    );
}
