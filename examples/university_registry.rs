//! A university registry under NFD constraints: validate a dataset, apply
//! updates, and localize violations with witnesses.
//!
//! This exercises the intra-/inter-set distinction the paper motivates:
//! a student's grade is local to a course, while age must be globally
//! consistent — and the checker pinpoints exactly which kind broke.
//!
//! Run with: `cargo run --example university_registry`

use nfd::core::{check, nfd::parse_set, satisfy};
use nfd::model::render;
use nfd::prelude::*;

fn main() {
    let schema = Schema::parse(
        "Registry : { <term: string, dept: string,
                       offerings: {<cnum: string, time: int,
                                    enrolled: {<sid: int, age: int, grade: string>}>}> };",
    )
    .unwrap();

    let sigma = parse_set(
        &schema,
        "# Within a term+dept row, course numbers identify offerings:
         Registry:offerings:[cnum -> time];
         Registry:offerings:[cnum -> enrolled];
         # Grades are local to one offering:
         Registry:offerings:enrolled:[sid -> grade];
         # Ages are global across the whole registry:
         Registry:[offerings:enrolled:sid -> offerings:enrolled:age];
         # No student can sit in two overlapping offerings of a row:
         Registry:offerings:[time, enrolled:sid -> cnum];",
    )
    .unwrap();

    println!("Constraints:");
    for nfd in &sigma {
        println!(
            "  {} {nfd}",
            if nfd.is_local() {
                "[local] "
            } else {
                "[global]"
            }
        );
    }

    let good = Instance::parse(
        &schema,
        r#"Registry = {
            <term: "Fall99", dept: "CIS",
             offerings: {<cnum: "550", time: 10,
                          enrolled: {<sid: 1, age: 20, grade: "A">,
                                     <sid: 2, age: 21, grade: "B">}>,
                         <cnum: "500", time: 12,
                          enrolled: {<sid: 1, age: 20, grade: "C">}>}>,
            <term: "Spring00", dept: "CIS",
             offerings: {<cnum: "550", time: 9,
                          enrolled: {<sid: 2, age: 21, grade: "A">}>}> };"#,
    )
    .unwrap();

    println!("\nRegistry:\n{}", render::render_instance(&schema, &good));
    println!(
        "all constraints hold: {}\n",
        satisfy::satisfies_all(&schema, &good, &sigma).unwrap()
    );

    // --- Update 1: a legal grade change (local dependency unaffected). --
    let update1 = Instance::parse(
        &schema,
        r#"Registry = {
            <term: "Fall99", dept: "CIS",
             offerings: {<cnum: "550", time: 10,
                          enrolled: {<sid: 1, age: 20, grade: "A+">,
                                     <sid: 2, age: 21, grade: "B">}>,
                         <cnum: "500", time: 12,
                          enrolled: {<sid: 1, age: 20, grade: "C">}>}>,
            <term: "Spring00", dept: "CIS",
             offerings: {<cnum: "550", time: 9,
                          enrolled: {<sid: 2, age: 21, grade: "A">}>}> };"#,
    )
    .unwrap();
    report("grade change for sid 1 in 550", &schema, &update1, &sigma);

    // --- Update 2: an age drifts in one offering (global violation). ----
    let update2 = Instance::parse(
        &schema,
        r#"Registry = {
            <term: "Fall99", dept: "CIS",
             offerings: {<cnum: "550", time: 10,
                          enrolled: {<sid: 1, age: 20, grade: "A">}>}>,
            <term: "Spring00", dept: "CIS",
             offerings: {<cnum: "550", time: 9,
                          enrolled: {<sid: 1, age: 25, grade: "A">}>}> };"#,
    )
    .unwrap();
    report(
        "age drift for sid 1 across terms",
        &schema,
        &update2,
        &sigma,
    );

    // --- Update 3: double-booked student within one row (local). --------
    let update3 = Instance::parse(
        &schema,
        r#"Registry = {
            <term: "Fall99", dept: "CIS",
             offerings: {<cnum: "550", time: 10,
                          enrolled: {<sid: 1, age: 20, grade: "A">}>,
                         <cnum: "500", time: 10,
                          enrolled: {<sid: 1, age: 20, grade: "B">}>}> };"#,
    )
    .unwrap();
    report(
        "student 1 in two courses at time 10",
        &schema,
        &update3,
        &sigma,
    );

    // --- What does a key determine? The engine answers via closure. -----
    let engine = Engine::new(&schema, &sigma).unwrap();
    let base = RootedPath::parse("Registry:offerings").unwrap();
    let x = vec![Path::parse("cnum").unwrap()];
    let closure = engine.closure(&base, &x).unwrap();
    println!(
        "\nWithin a registry row, `cnum` determines: {}",
        closure
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn report(what: &str, schema: &Schema, inst: &Instance, sigma: &[Nfd]) {
    print!("update: {what:<42} → ");
    match satisfy::check_all(schema, inst, sigma).unwrap() {
        None => println!("ACCEPTED"),
        Some((nfd, violation)) => {
            println!("REJECTED");
            println!("    violates {nfd}");
            println!("    witness: {violation}");
            // Re-check to show which other constraints survive.
            let survivors = sigma
                .iter()
                .filter(|n| check(schema, inst, n).unwrap().holds)
                .count();
            println!("    ({survivors}/{} constraints still hold)", sigma.len());
        }
    }
}
