//! Regenerates every numbered artifact of the paper, in order: the
//! Section 2 instance, Examples 2.1–2.5, Figure 1, the Section 2.2
//! translations, the Section 3.1 worked derivation, Examples 3.1/3.2, and
//! the Appendix A closures and constructed instances (Examples A.1, A.2).
//!
//! Run with: `cargo run --example paper_walkthrough`
//! (EXPERIMENTS.md records this output against the paper.)

use nfd::core::{check, construct, nfd::parse_set, proof, rules, satisfy};
use nfd::model::render;
use nfd::prelude::*;

fn heading(s: &str) {
    println!("\n━━━ {s} ━━━");
}

fn main() {
    section_2();
    figure_1();
    section_2_2();
    section_3_1();
    example_3_1();
    example_3_2();
    appendix_a1();
    appendix_a2();
}

fn section_2() {
    heading("Section 2 — the Course instance");
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int, students: {<sid: int, grade: string>}> };",
    )
    .unwrap();
    let inst = Instance::parse(
        &schema,
        r#"Course = { <cnum: "cis550", time: 10,
                       students: {<sid: 1001, grade: "A">, <sid: 2002, grade: "B">}>,
                      <cnum: "cis500", time: 12,
                       students: {<sid: 1001, grade: "A">}> };"#,
    )
    .unwrap();
    println!("{}", render::render_instance(&schema, &inst));
}

fn figure_1() {
    heading("Figure 1 — an instance violating R:[B:C → E:F]");
    let schema =
        Schema::parse("R : { <A: int, B: {<C: int, D: int>}, E: {<F: int, G: int>}> };").unwrap();
    let inst = Instance::parse(
        &schema,
        "R = { <A: 1, B: {<C: 1, D: 3>}, E: {<F: 5, G: 6>, <F: 5, G: 7>}>,
               <A: 2, B: {<C: 2, D: 2>, <C: 1, D: 3>}, E: {<F: 3, G: 4>, <F: 4, G: 4>}> };",
    )
    .unwrap();
    println!("{}", render::render_instance(&schema, &inst));
    let nfd = Nfd::parse(&schema, "R:[B:C -> E:F]").unwrap();
    let report = check(&schema, &inst, &nfd).unwrap();
    println!("I ⊨ {nfd}?  {}", report.holds);
    if let Some(v) = report.violation {
        println!("witness: {v}");
    }
}

fn section_2_2() {
    heading("Section 2.2 — NFDs expressed in logic");
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .unwrap();
    for text in [
        "Course:[books:isbn -> books:title]",
        "Course:students:[sid -> grade]",
        "Course:[students:sid -> students:age]",
    ] {
        let nfd = Nfd::parse(&schema, text).unwrap();
        println!("{nfd}\n  ≡ {}", nfd.to_formula(&schema).unwrap());
    }
}

fn section_3_1() {
    heading("Section 3.1 — the worked derivation R:A:[B → E]");
    let schema =
        Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A:B:C, D -> A:E:F]; R:A:[B -> E:G];").unwrap();
    println!("Σ: (nfd1) {}", sigma[0]);
    println!("   (nfd2) {}", sigma[1]);

    // The paper's eight steps, replayed through the rule functions.
    let p = |s: &str| nfd::path::Path::parse(s).unwrap();
    let s1 = rules::locality(&sigma[0]).unwrap();
    let s2 = rules::prefix(&s1, &p("B:C")).unwrap();
    let s3 = rules::locality(&s2).unwrap();
    let s4 = rules::push_in(&s3, 1).unwrap();
    let s5 = rules::locality(&sigma[1]).unwrap();
    let s6 = rules::push_in(&s5, 1).unwrap();
    let s7 = rules::singleton(&schema, &[s4.clone(), s6.clone()], &p("E")).unwrap();
    let s8 = rules::transitivity(&[s2.clone(), sigma[1].clone()], &s7).unwrap();
    for (i, (step, rule)) in [
        (&s1, "locality of nfd1"),
        (&s2, "prefix rule on (1)"),
        (&s3, "locality of (2)"),
        (&s4, "push-in"),
        (&s5, "locality of nfd2"),
        (&s6, "push-in"),
        (&s7, "singleton with (4) and (6)"),
        (&s8, "transitivity with (7), (2), and nfd2"),
    ]
    .iter()
    .enumerate()
    {
        println!("  {}. {:<32} by {rule}", i + 1, step.to_string());
    }

    // …and the engine's own machine-found proof of the same goal.
    let engine = Engine::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "R:A:[B -> E]").unwrap();
    let pf = proof::prove(&engine, &goal).unwrap().unwrap();
    proof::verify(&engine, &pf).unwrap();
    println!("\nEngine-found certificate:\n{pf}");
}

fn example_3_1() {
    heading("Example 3.1 — locality vs full-locality");
    let schema = Schema::parse("R : { <A: {<B: {<C: int, E: {<W: int>}>}, D: int>}> };").unwrap();
    let f1 = Nfd::parse(&schema, "R:[A:B:C, A:D -> A:B:E:W]").unwrap();
    println!("f1 = {f1}");
    let weak = rules::locality(&f1).unwrap();
    println!(
        "locality       ⇒ {weak} (pushed in: {})",
        nfd::core::simple::to_simple(&weak)
    );
    let strong = rules::full_locality(&f1, &nfd::path::Path::parse("A:B").unwrap()).unwrap();
    println!("full-locality  ⇒ {strong}");
}

fn example_3_2() {
    heading("Example 3.2 — empty sets break transitivity");
    let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int, E: int> };").unwrap();
    let inst = Instance::parse(
        &schema,
        "R = { <A: 1, B: {}, D: 2, E: 3>,
               <A: 1, B: {}, D: 3, E: 4>,
               <A: 2, B: {<C: 3>}, D: 4, E: 5> };",
    )
    .unwrap();
    println!("{}", render::render_instance(&schema, &inst));
    for t in [
        "R:[A -> B:C]",
        "R:[B:C -> D]",
        "R:[A -> D]",
        "R:[B:C -> E]",
        "R:[B -> E]",
    ] {
        let nfd = Nfd::parse(&schema, t).unwrap();
        println!(
            "  I ⊨ {t} ?  {}",
            check(&schema, &inst, &nfd).unwrap().holds
        );
    }
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();
    let strict = Engine::new(&schema, &sigma).unwrap();
    let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
    let ann = Engine::with_policy(
        &schema,
        &sigma,
        EmptySetPolicy::non_empty([RootedPath::parse("R:B").unwrap()]),
    )
    .unwrap();
    println!(
        "  Σ ⊢ R:[A → D]  without empty sets:        {}",
        strict.implies(&goal).unwrap()
    );
    println!(
        "  Σ ⊢ R:[A → D]  empty sets, no annotation: {}",
        pess.implies(&goal).unwrap()
    );
    println!(
        "  Σ ⊢ R:[A → D]  with `R:B` NON-EMPTY:      {}",
        ann.implies(&goal).unwrap()
    );
}

fn appendix(schema: &Schema, sigma_text: &str, x_text: &str, label: &str) {
    let sigma = parse_set(schema, sigma_text).unwrap();
    let engine = Engine::new(schema, &sigma).unwrap();
    let base = RootedPath::relation_only(schema.relation_names().next().unwrap());
    let x = vec![Path::parse(x_text).unwrap()];
    let closure = engine.closure(&base, &x).unwrap();
    println!(
        "closure ({label}) = {{ {} }}",
        closure
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let built = construct::counterexample(&engine, &base, &x).unwrap();
    println!("{}", render::render_instance(schema, &built.instance));
    let ok = sigma
        .iter()
        .all(|nfd| check(schema, &built.instance, nfd).unwrap().holds);
    println!("constructed instance satisfies Σ: {ok}");
    // And it violates X → y for a path outside the closure:
    let rec = schema
        .relation_type(base.relation)
        .unwrap()
        .element_record()
        .unwrap();
    for q in nfd::path::typing::paths_of_record(rec) {
        let rooted = RootedPath::new(base.relation, q.clone());
        if !closure.contains(&rooted) {
            let goal = Nfd::new(base.clone(), x.clone(), q).unwrap();
            let holds = satisfy::check(schema, &built.instance, &goal)
                .unwrap()
                .holds;
            println!("  I ⊭ {goal} (as Lemma A.1 demands): {}", !holds);
        }
    }
}

fn appendix_a1() {
    heading("Appendix A, Example A.1 — closure and construction");
    let schema = Schema::parse(
        "R : { <A: int, B: {<C: int>}, D: int, E: {<F: int, G: int>},
               H: {<J: int, L: int>}, I: int, M: {<N: int, O: int>}> };",
    )
    .unwrap();
    appendix(
        &schema,
        "R:[A -> B:C]; R:[B:C -> D]; R:[D -> E:F];
         R:[A -> E:G]; R:[B:C -> H]; R:[I -> H:J];",
        "B",
        "(R, {B}, Σ)*",
    );
}

fn appendix_a2() {
    heading("Appendix A, Example A.2 — deep nesting");
    let schema =
        Schema::parse("R : { <A: {<B: {<C: int, D: int, E: {<F: int, G: int>}>}>}, H: int> };")
            .unwrap();
    appendix(
        &schema,
        "R:[A:B:C -> A:B]; R:[A:B:C -> A:B:E:F]; R:[H -> A:B:D];",
        "A:B:C",
        "(R, {A:B:C}, Σ)*",
    );
}
