//! Quickstart: express the paper's Course constraints, check an instance,
//! and answer the introduction's motivating inference — with a printed
//! proof.
//!
//! Run with: `cargo run --example quickstart`

use nfd::core::{check, nfd::parse_set, proof};
use nfd::prelude::*;

fn main() {
    // -- 1. A nested schema (the paper's running example). ---------------
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .expect("schema parses");
    println!("Schema:\n{schema}");

    // -- 2. The five constraints from the paper's introduction. ----------
    let sigma = parse_set(
        &schema,
        "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
         Course:[books:isbn -> books:title];
         Course:students:[sid -> grade];
         Course:[students:sid -> students:age];
         Course:[time, students:sid -> cnum];",
    )
    .expect("constraints parse");
    println!("Constraints:");
    for nfd in &sigma {
        println!("  {nfd}");
    }

    // -- 3. Check an instance. -------------------------------------------
    let inst = Instance::parse(
        &schema,
        r#"Course = {
            <cnum: "cis550", time: 10,
             students: {<sid: 1001, age: 20, grade: "A">,
                        <sid: 2002, age: 22, grade: "B">},
             books: {<isbn: "0-13", title: "Database Systems">}>,
            <cnum: "cis500", time: 12,
             students: {<sid: 1001, age: 20, grade: "C">},
             books: {<isbn: "0-13", title: "Database Systems">}> };"#,
    )
    .expect("instance parses and typechecks");
    println!(
        "\nInstance:\n{}",
        nfd::model::render::render_instance(&schema, &inst)
    );

    for nfd in &sigma {
        let report = check(&schema, &inst, nfd).expect("checkable");
        println!("  {} {nfd}", if report.holds { "✓" } else { "✗" },);
        if let Some(v) = report.violation {
            println!("      witness: {v}");
        }
    }

    // -- 4. The motivating inference (Section 1): given a sid and a time,
    //       is the set of books unique? ----------------------------------
    let engine = Engine::new(&schema, &sigma).expect("Σ is well-formed");
    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
    println!("\nDoes Σ imply {goal}?");
    let pf = proof::prove(&engine, &goal)
        .expect("engine runs")
        .expect("the paper says yes — and so does the engine");
    proof::verify(&engine, &pf).expect("proof certificate checks");
    println!("{pf}");

    // A weaker variant is NOT implied:
    let weaker = Nfd::parse(&schema, "Course:[students:sid -> books]").unwrap();
    println!(
        "Does Σ imply {weaker}?  {}",
        if engine.implies(&weaker).unwrap() {
            "yes"
        } else {
            "no — a student may take many courses"
        }
    );
}
