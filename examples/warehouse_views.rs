//! Data-warehouse constraint propagation — the application that motivates
//! the paper ("a first step in reasoning about constraints on data
//! warehouse applications, where both the source and target databases
//! support complex types").
//!
//! A warehouse is loaded as a materialized view over a source with nested
//! types. Before creating the view, we ask the implication engine which of
//! the view's desired constraints are *guaranteed* by the source
//! constraints — those need no runtime checking — and which must be
//! enforced during loading. For a refused constraint, the Appendix A
//! construction produces a concrete source database demonstrating why the
//! guarantee fails.
//!
//! Run with: `cargo run --example warehouse_views`

use nfd::core::view::{refute_view_dependency, Refutation, View, ViewOp};
use nfd::core::{construct, nfd::parse_set, satisfy};
use nfd::model::render;
use nfd::prelude::*;

fn main() {
    // Source: an order-processing database with nested line items.
    let schema = Schema::parse(
        "Orders : { <oid: int, day: int,
                     customer: {<cid: int, region: string>},
                     lines: {<sku: string, qty: int, price: int,
                              shipments: {<depot: string, eta: int>}>}> };",
    )
    .unwrap();

    let source_sigma = parse_set(
        &schema,
        "Orders:[oid -> day];                      # oid is a key…
         Orders:[oid -> customer];
         Orders:[oid -> lines];
         Orders:[customer:cid -> customer:region]; # region is consistent per customer
         Orders:lines:[sku -> price];              # one price per SKU within an order
         Orders:[lines:sku -> lines:price];        # …and across orders (catalogue price)
         Orders:lines:shipments:[depot -> eta];    # one ETA per depot per line
         Orders:[oid -> customer:cid];             # exactly one customer per order
         Orders:[oid -> customer:region];",
    )
    .unwrap();
    println!("Source constraints:");
    for nfd in &source_sigma {
        println!("  {nfd}");
    }

    let engine = Engine::new(&schema, &source_sigma).unwrap();

    // The warehouse view wants these invariants to hold on the loaded
    // data. Which are already guaranteed by the source?
    let wanted = parse_set(
        &schema,
        "Orders:[oid -> lines:price];             # order id fixes every price it contains?
         Orders:[customer -> customer:region];    # the customer set fixes the region?
         Orders:[day, customer:cid -> oid];       # (day, customer) identifies the order?
         Orders:[lines:sku -> lines:qty];         # sku fixes quantities?
         Orders:[oid -> customer:region];         # order fixes the buyer's region?
         Orders:[customer:cid -> customer];       # cid fixes the whole customer set?",
    )
    .unwrap();

    println!("\nView constraint audit:");
    let mut must_enforce = Vec::new();
    for goal in &wanted {
        if engine.implies(goal).unwrap() {
            println!("  GUARANTEED  {goal}");
        } else {
            println!("  ENFORCE     {goal}");
            must_enforce.push(goal.clone());
        }
    }

    // For the first refused constraint, produce the counterexample source
    // database the paper's completeness construction promises.
    if let Some(goal) = must_enforce.first() {
        println!("\nWhy `{goal}` is not guaranteed — a legal source database violating it:");
        let built = construct::counterexample(&engine, &goal.base, goal.lhs()).unwrap();
        println!("{}", render::render_instance(&schema, &built.instance));
        let sat_sigma = source_sigma
            .iter()
            .all(|n| satisfy::check(&schema, &built.instance, n).unwrap().holds);
        let sat_goal = satisfy::check(&schema, &built.instance, goal)
            .unwrap()
            .holds;
        println!("  satisfies every source constraint: {sat_sigma}");
        println!("  satisfies the view constraint:     {sat_goal}");
    }

    // -- A restructuring view: flatten line items for the reporting mart. --
    // The warehouse wants Orders flattened to one row per line item.
    let flat = View::new(
        Label::new("LineFacts"),
        Label::new("Orders"),
        vec![ViewOp::Unnest {
            attr: Label::new("lines"),
        }],
    );
    let ext = flat.extend_schema(&schema).unwrap();
    println!(
        "\nReporting view LineFacts = μ_lines(Orders) : {}",
        flat.output_type(&schema).unwrap()
    );
    // Which invariants does the mart inherit? Randomized refutation over
    // Σ-satisfying source databases:
    let candidates = [
        "LineFacts:[oid -> day]",      // carried: oid still fixes the day
        "LineFacts:[sku -> price]",    // carried: catalogue pricing survives
        "LineFacts:[oid -> sku]",      // NOT carried: an order has many lines
        "LineFacts:[oid, sku -> qty]", // NOT carried: same sku can repeat? (sets dedup — check!)
    ];
    for text in candidates {
        let nfd = Nfd::parse(&ext, text).unwrap();
        match refute_view_dependency(&schema, &source_sigma, &flat, &nfd, 300, 11).unwrap() {
            Refutation::Refuted(witness) => {
                println!("  NOT CARRIED {text}");
                println!(
                    "      source witness has {} order(s)",
                    witness.relation(Label::new("Orders")).unwrap().len()
                );
            }
            Refutation::Unrefuted { tried } => {
                println!("  carried*    {text}   (*unrefuted across {tried} Σ-samples)");
            }
        }
    }

    // Bonus: everything the order key determines, i.e. the functional
    // payload a per-order view can carry without re-checking.
    let closure = engine
        .closure(
            &RootedPath::parse("Orders").unwrap(),
            &[Path::parse("oid").unwrap()],
        )
        .unwrap();
    println!("\n(Orders, {{oid}}, Σ)* = {{");
    for p in &closure {
        println!("    {p}");
    }
    println!("}}");
}
