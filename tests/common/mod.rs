//! Shared randomized generators for the integration test suite.
//!
//! All generators are seeded (`StdRng`), so every test run is
//! deterministic and failures are reproducible from the seed printed in
//! the assertion message.

#![allow(dead_code)] // each integration test binary uses a subset

use nfd::core::engine::Engine;
use nfd::core::naive::NaiveEngine;
use nfd::core::{EmptySetPolicy, Nfd};
use nfd::govern::{Budget, Verdict};
use nfd::model::gen::{GenConfig, Generator};
use nfd::model::{BaseType, Field, Instance, Label, RecordType, Schema, Type};
use nfd::path::typing::paths_of_record;
use nfd::path::{Path, RootedPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for random schemas.
#[derive(Clone, Copy)]
pub struct SchemaShape {
    /// Maximum nesting depth below the relation's own set constructor.
    pub max_depth: usize,
    /// Fields per record (inclusive range).
    pub fields: (usize, usize),
    /// Probability that a field is set-valued (when depth remains).
    pub set_prob: f64,
}

impl Default for SchemaShape {
    fn default() -> Self {
        SchemaShape {
            max_depth: 2,
            fields: (2, 4),
            set_prob: 0.4,
        }
    }
}

/// Generates a random single-relation schema named `R{seed}` with
/// globally unique labels (the paper's no-repeated-labels assumption).
/// Only `int`/`string` base types are used so the Appendix A construction
/// applies.
pub fn random_schema(seed: u64, shape: SchemaShape) -> Schema {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = 0usize;
    let rel = format!("R{seed}");
    let rec = random_record(&mut rng, &mut counter, shape.max_depth, &shape, seed);
    Schema::new(
        vec![(Label::new(&rel), Type::Set(Box::new(Type::Record(rec))))],
        nfd::model::types::Strictness::Strict,
    )
    .expect("generated schema is valid")
}

fn random_record(
    rng: &mut StdRng,
    counter: &mut usize,
    depth: usize,
    shape: &SchemaShape,
    seed: u64,
) -> RecordType {
    let n = rng.gen_range(shape.fields.0..=shape.fields.1);
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let label = format!("f{seed}_{}", *counter);
        *counter += 1;
        let ty = if depth > 0 && rng.gen_bool(shape.set_prob) {
            Type::Set(Box::new(Type::Record(random_record(
                rng,
                counter,
                depth - 1,
                shape,
                seed,
            ))))
        } else if rng.gen_bool(0.5) {
            Type::Base(BaseType::Int)
        } else {
            Type::Base(BaseType::String)
        };
        fields.push(Field {
            label: Label::new(&label),
            ty,
        });
    }
    RecordType::new(fields).expect("labels are unique by construction")
}

/// Generates a random schema with `relations` relations named
/// `R{seed}x{k}`, sharing one label counter so every label stays
/// globally unique. With `relations == 1` this is [`random_schema`]
/// modulo the relation name.
pub fn random_multi_schema(seed: u64, shape: SchemaShape, relations: usize) -> Schema {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counter = 0usize;
    let rels = (0..relations.max(1))
        .map(|k| {
            let rec = random_record(&mut rng, &mut counter, shape.max_depth, &shape, seed);
            (
                Label::new(&format!("R{seed}x{k}")),
                Type::Set(Box::new(Type::Record(rec))),
            )
        })
        .collect();
    Schema::new(rels, nfd::model::types::Strictness::Strict).expect("generated schema is valid")
}

/// The single relation of a [`random_schema`] result.
pub fn only_relation(schema: &Schema) -> Label {
    schema.relation_names().next().expect("one relation")
}

/// All base-path candidates of a relation: rooted paths resolving to a
/// set of records (including the bare relation name).
pub fn base_candidates(schema: &Schema, relation: Label) -> Vec<RootedPath> {
    let mut out = vec![RootedPath::relation_only(relation)];
    let rec = schema
        .relation_type(relation)
        .unwrap()
        .element_record()
        .unwrap();
    for p in paths_of_record(rec) {
        let rooted = RootedPath::new(relation, p);
        if nfd::path::typing::base_element_record(schema, &rooted).is_ok() {
            out.push(rooted);
        }
    }
    out
}

/// A random well-formed NFD over the schema (possibly with a nested base
/// path; LHS of size 0..=3).
pub fn random_nfd(rng: &mut StdRng, schema: &Schema) -> Option<Nfd> {
    let relation = only_relation(schema);
    random_nfd_in(rng, schema, relation)
}

/// [`random_nfd`] scoped to one relation of a (possibly multi-relation)
/// schema.
pub fn random_nfd_in(rng: &mut StdRng, schema: &Schema, relation: Label) -> Option<Nfd> {
    let bases = base_candidates(schema, relation);
    let base = bases[rng.gen_range(0..bases.len())].clone();
    let rec = nfd::path::typing::base_element_record(schema, &base).ok()?;
    let paths = paths_of_record(rec);
    if paths.is_empty() {
        return None;
    }
    let pick = |rng: &mut StdRng| paths[rng.gen_range(0..paths.len())].clone();
    let lhs: Vec<Path> = (0..rng.gen_range(0..=3usize)).map(|_| pick(rng)).collect();
    let rhs = pick(rng);
    Nfd::new(base, lhs, rhs).ok()
}

/// A random set of `n` NFDs.
pub fn random_sigma(rng: &mut StdRng, schema: &Schema, n: usize) -> Vec<Nfd> {
    (0..n).filter_map(|_| random_nfd(rng, schema)).collect()
}

/// A `(naive oracle, indexed engine)` pair compiled from the same
/// `(schema, Σ, policy)` — the standard differential fixture.
pub fn build_pair<'s>(
    schema: &'s Schema,
    sigma: &[Nfd],
    policy: EmptySetPolicy,
) -> (NaiveEngine<'s>, Engine<'s>) {
    let naive =
        NaiveEngine::with_policy_budget(schema, sigma, policy.clone(), Budget::standard()).unwrap();
    let engine = Engine::with_policy(schema, sigma, policy).unwrap();
    (naive, engine)
}

/// Collapses a decided two-valued verdict to `bool`; panics on
/// `Exhausted` (differential suites run under ample budgets).
pub fn verdict_bool(v: &Verdict) -> bool {
    match v {
        Verdict::Implied => true,
        Verdict::NotImplied => false,
        other => panic!("unexpected verdict {other:?}"),
    }
}

/// A small random instance of the schema with colliding base values and
/// no empty sets (Theorem 3.1's regime).
pub fn random_instance_no_empty(seed: u64, schema: &Schema) -> Instance {
    let mut g = Generator::new(
        seed,
        GenConfig {
            min_set: 1,
            max_set: 2,
            empty_prob: 0.0,
            domain: 2,
        },
    );
    g.instance(schema)
}

/// A small random instance that may contain empty sets (Section 3.2's
/// regime).
pub fn random_instance_with_empties(seed: u64, schema: &Schema) -> Instance {
    let mut g = Generator::new(
        seed,
        GenConfig {
            min_set: 0,
            max_set: 2,
            empty_prob: 0.3,
            domain: 2,
        },
    );
    g.instance(schema)
}

/// The Course schema used throughout the paper.
pub fn course_schema() -> Schema {
    Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .unwrap()
}

/// The five Course constraints of the paper's introduction (as seven
/// NFDs; the key constraint expands to three).
pub fn course_sigma(schema: &Schema) -> Vec<Nfd> {
    nfd::core::nfd::parse_set(
        schema,
        "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
         Course:[books:isbn -> books:title];
         Course:students:[sid -> grade];
         Course:[students:sid -> students:age];
         Course:[time, students:sid -> cnum];",
    )
    .unwrap()
}
