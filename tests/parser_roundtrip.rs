//! Property tests: display/parse round-trips for every textual form, driven
//! by seeded deterministic generators over the concrete syntaxes.

use nfd::core::Nfd;
use nfd::model::parse::{parse_type, parse_value};
use nfd::model::{Label, Schema, Value};
use nfd::path::Path;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_ident(rng: &mut StdRng, prefix: &str) -> String {
    let mut s = String::from(prefix);
    for _ in 0..rng.gen_range(1..=6usize) {
        s.push((b'a' + rng.gen_range(0..26u8)) as char);
    }
    s
}

// ---- Value round-trips --------------------------------------------------

fn random_value(rng: &mut StdRng, depth: usize) -> Value {
    if depth == 0 || rng.gen_bool(0.45) {
        return match rng.gen_range(0..3u8) {
            0 => Value::int(rng.gen_range(0..2_000_000i64) - 1_000_000),
            1 => {
                const POOL: &[u8] = b"abcXYZ019 _.:-";
                let n = rng.gen_range(0..=12usize);
                let s: String = (0..n)
                    .map(|_| POOL[rng.gen_range(0..POOL.len())] as char)
                    .collect();
                Value::str(s)
            }
            _ => Value::bool(rng.gen_bool(0.5)),
        };
    }
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(0..4usize);
        Value::set(
            (0..n)
                .map(|_| random_value(rng, depth - 1))
                .collect::<Vec<_>>(),
        )
    } else {
        // Deduplicate labels to satisfy the record invariant.
        let mut seen = std::collections::HashSet::new();
        let mut fields = Vec::new();
        for _ in 0..rng.gen_range(0..4usize) {
            let l = random_ident(rng, "f");
            if seen.insert(l.clone()) {
                fields.push((Label::new(&l), random_value(rng, depth - 1)));
            }
        }
        Value::record(fields)
    }
}

#[test]
fn value_display_parses_back() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = random_value(&mut rng, 3);
        let text = v.to_string();
        let parsed = parse_value(&text).unwrap();
        assert_eq!(parsed, v, "seed {seed}: {text}");
    }
}

#[test]
fn string_escapes_roundtrip() {
    const POOL: &[char] = &[
        'a', 'Z', '7', ' ', '"', '\\', '\n', '\t', 'é', 'λ', '中', '🦀', '\'', '/', '{', '}',
    ];
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..=20usize);
        let s: String = (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect();
        let v = Value::str(s);
        let text = v.to_string();
        // Only valid for strings our lexer can re-read (it supports
        // \" \\ \n \t escapes; Rust's Debug may emit \u{...} for
        // exotic characters).
        if let Ok(parsed) = parse_value(&text) {
            assert_eq!(parsed, v, "seed {seed}: {text}");
        }
    }
}

// ---- Path round-trips ---------------------------------------------------

fn random_labels(rng: &mut StdRng, max_len: usize) -> Vec<String> {
    (0..rng.gen_range(0..=max_len))
        .map(|_| random_ident(rng, ""))
        .collect()
}

#[test]
fn path_display_parses_back() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels = random_labels(&mut rng, 4);
        labels.push(random_ident(&mut rng, "")); // non-empty
        let path = Path::of(labels.iter().map(String::as_str));
        let text = path.to_string();
        assert_eq!(Path::parse(&text).unwrap(), path, "seed {seed}");
    }
}

/// Prefix/follows relations are consistent with concatenation.
#[test]
fn prefix_laws() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_labels(&mut rng, 3);
        let b = random_labels(&mut rng, 3);
        let pa = Path::of(a.iter().map(String::as_str));
        let pb = Path::of(b.iter().map(String::as_str));
        let joined = pa.join(&pb);
        assert!(pa.is_prefix_of(&joined), "seed {seed}");
        assert_eq!(joined.strip_prefix(&pa), Some(pb.clone()), "seed {seed}");
        if !pb.is_empty() {
            assert!(pa.is_proper_prefix_of(&joined), "seed {seed}");
            // p' A follows q iff p' is a proper prefix of q: any one-label
            // extension of a proper prefix follows the longer path.
            let one_more = pa.child(Label::new("zz"));
            assert!(one_more.follows(&joined), "seed {seed}");
        }
        assert_eq!(pa.common_prefix(&joined), pa, "seed {seed}");
    }
}

// ---- Schema & type round-trips -------------------------------------------

/// A syntactically valid nested type string with unique labels.
fn random_type_text(rng: &mut StdRng) -> String {
    let tag = rng.gen_range(1..1000u32);
    let n = rng.gen_range(1..4usize);
    let mut fields = Vec::new();
    for i in 0..n {
        if i % 2 == 0 {
            fields.push(format!("b{tag}_{i}: int"));
        } else {
            fields.push(format!("s{tag}_{i}: {{<c{tag}_{i}: string>}}"));
        }
    }
    format!("{{<{}>}}", fields.join(", "))
}

#[test]
fn type_display_parses_back() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = random_type_text(&mut rng);
        let ty = parse_type(&text).unwrap();
        let printed = ty.to_string();
        assert_eq!(parse_type(&printed).unwrap(), ty, "seed {seed}: {text}");
    }
}

#[test]
fn schema_display_parses_back() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = random_type_text(&mut rng);
        let tag = rng.gen_range(1..1000u32);
        let src = format!("Rel{tag} : {text};");
        let schema = Schema::parse(&src).unwrap();
        let printed = schema.to_string();
        assert_eq!(
            Schema::parse(&printed).unwrap(),
            schema,
            "seed {seed}: {src}"
        );
    }
}

// ---- NFD round-trips ------------------------------------------------------

/// NFDs over the Course schema: display → parse is the identity.
#[test]
fn nfd_display_parses_back() {
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .unwrap();
    let global_paths = [
        "cnum",
        "time",
        "students:sid",
        "students:age",
        "books:isbn",
        "books:title",
    ];
    let local_paths = ["sid", "age", "grade", "sid", "age", "grade"];
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let local = rng.gen_bool(0.5);
        let (base, paths): (&str, &[&str]) = if local {
            ("Course:students", &local_paths)
        } else {
            ("Course", &global_paths)
        };
        let lhs: Vec<Path> = (0..rng.gen_range(0..3usize))
            .map(|_| Path::parse(paths[rng.gen_range(0..paths.len())]).unwrap())
            .collect();
        let rhs = Path::parse(paths[rng.gen_range(0..paths.len())]).unwrap();
        let nfd = Nfd::new(nfd::path::RootedPath::parse(base).unwrap(), lhs, rhs).unwrap();
        nfd.validate(&schema).unwrap();
        let printed = nfd.to_string();
        assert_eq!(
            Nfd::parse(&schema, &printed).unwrap(),
            nfd,
            "seed {seed}: {printed}"
        );
    }
}
