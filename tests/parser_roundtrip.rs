//! Property tests: display/parse round-trips for every textual form, via
//! proptest strategies over the concrete syntaxes.

use nfd::core::Nfd;
use nfd::model::parse::{parse_type, parse_value};
use nfd::model::{Schema, Value};
use nfd::path::Path;
use proptest::prelude::*;

// ---- Value round-trips --------------------------------------------------

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::int),
        "[a-zA-Z0-9 _.:-]{0,12}".prop_map(Value::str),
        any::<bool>().prop_map(Value::bool),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            prop::collection::vec(("[a-z][a-z0-9_]{0,6}", inner), 0..4).prop_map(|fields| {
                // Deduplicate labels to satisfy the record invariant.
                let mut seen = std::collections::HashSet::new();
                let fields: Vec<(nfd::model::Label, Value)> = fields
                    .into_iter()
                    .filter(|(l, _)| seen.insert(l.clone()))
                    .map(|(l, v)| (nfd::model::Label::new(&l), v))
                    .collect();
                Value::record(fields)
            }),
        ]
    })
}

proptest! {
    #[test]
    fn value_display_parses_back(v in value_strategy()) {
        let text = v.to_string();
        let parsed = parse_value(&text).unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn string_escapes_roundtrip(s in "\\PC{0,20}") {
        let v = Value::str(s.clone());
        let text = v.to_string();
        // Only valid for strings our lexer can re-read (it supports
        // \" \\ \n \t escapes; Rust's Debug may emit \u{...} for
        // exotic characters).
        if let Ok(parsed) = parse_value(&text) {
            prop_assert_eq!(parsed, v);
        }
    }
}

// ---- Path round-trips ---------------------------------------------------

proptest! {
    #[test]
    fn path_display_parses_back(labels in prop::collection::vec("[a-z][a-z0-9_]{0,8}", 1..5)) {
        let path = Path::of(labels.iter().map(String::as_str));
        let text = path.to_string();
        prop_assert_eq!(Path::parse(&text).unwrap(), path);
    }

    /// Prefix/follows relations are consistent with concatenation.
    #[test]
    fn prefix_laws(a in prop::collection::vec("[a-z]{1,3}", 0..4),
                   b in prop::collection::vec("[a-z]{1,3}", 0..4)) {
        let pa = Path::of(a.iter().map(String::as_str));
        let pb = Path::of(b.iter().map(String::as_str));
        let joined = pa.join(&pb);
        prop_assert!(pa.is_prefix_of(&joined));
        prop_assert_eq!(joined.strip_prefix(&pa), Some(pb.clone()));
        if !pb.is_empty() {
            prop_assert!(pa.is_proper_prefix_of(&joined));
            // p' A follows q iff p' is a proper prefix of q: any one-label
            // extension of a proper prefix follows the longer path.
            let one_more = pa.child(nfd::model::Label::new("zz"));
            prop_assert!(one_more.follows(&joined));
        }
        prop_assert_eq!(pa.common_prefix(&joined), pa);
    }
}

// ---- Schema & type round-trips -------------------------------------------

fn type_text_strategy() -> impl Strategy<Value = String> {
    // Build syntactically valid nested type strings with unique labels.
    (1u32..1000).prop_flat_map(|tag| {
        (1usize..4).prop_map(move |n| {
            let mut fields = Vec::new();
            for i in 0..n {
                if i % 2 == 0 {
                    fields.push(format!("b{tag}_{i}: int"));
                } else {
                    fields.push(format!("s{tag}_{i}: {{<c{tag}_{i}: string>}}"));
                }
            }
            format!("{{<{}>}}", fields.join(", "))
        })
    })
}

proptest! {
    #[test]
    fn type_display_parses_back(text in type_text_strategy()) {
        let ty = parse_type(&text).unwrap();
        let printed = ty.to_string();
        prop_assert_eq!(parse_type(&printed).unwrap(), ty);
    }

    #[test]
    fn schema_display_parses_back(text in type_text_strategy(), tag in 1u32..1000) {
        let src = format!("Rel{tag} : {text};");
        let schema = Schema::parse(&src).unwrap();
        let printed = schema.to_string();
        prop_assert_eq!(Schema::parse(&printed).unwrap(), schema);
    }
}

// ---- NFD round-trips ------------------------------------------------------

proptest! {
    /// NFDs over the Course schema: display → parse is the identity.
    #[test]
    fn nfd_display_parses_back(
        lhs_pick in prop::collection::vec(0usize..6, 0..3),
        rhs_pick in 0usize..6,
        local in any::<bool>(),
    ) {
        let schema = Schema::parse(
            "Course : { <cnum: string, time: int,
                         students: {<sid: int, age: int, grade: string>},
                         books: {<isbn: string, title: string>}> };",
        ).unwrap();
        let global_paths = ["cnum", "time", "students:sid", "students:age",
                            "books:isbn", "books:title"];
        let local_paths = ["sid", "age", "grade", "sid", "age", "grade"];
        let (base, paths): (&str, &[&str]) = if local {
            ("Course:students", &local_paths)
        } else {
            ("Course", &global_paths)
        };
        let lhs: Vec<Path> = lhs_pick.iter().map(|&i| Path::parse(paths[i]).unwrap()).collect();
        let rhs = Path::parse(paths[rhs_pick]).unwrap();
        let nfd = Nfd::new(
            nfd::path::RootedPath::parse(base).unwrap(),
            lhs,
            rhs,
        ).unwrap();
        nfd.validate(&schema).unwrap();
        let printed = nfd.to_string();
        prop_assert_eq!(Nfd::parse(&schema, &printed).unwrap(), nfd);
    }
}
