//! E4: the Section 2.2 logic translations, exactly as printed in the
//! paper, plus structural invariants of the translation.

mod common;

use common::{course_schema, random_nfd, random_schema, SchemaShape};
use nfd::core::Nfd;
use nfd::logic::Formula;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's worked translation of Example 2.4
/// (`Course:[students:sid → students:age]`).
#[test]
fn example_2_4_translation() {
    let schema = course_schema();
    let nfd = Nfd::parse(&schema, "Course:[students:sid -> students:age]").unwrap();
    let f = nfd.to_formula(&schema).unwrap();
    assert_eq!(
        f.to_string(),
        "∀course1 ∈ Course. ∀course2 ∈ Course. \
         ∀students1 ∈ course1.students. ∀students2 ∈ course2.students. \
         (students1.sid = students2.sid → students1.age = students2.age)"
    );
}

/// Example 2.2: books occurs twice in the NFD but only two book variables
/// appear ("only two variables for books are introduced").
#[test]
fn example_2_2_translation() {
    let schema = course_schema();
    let nfd = Nfd::parse(&schema, "Course:[books:isbn -> books:title]").unwrap();
    let f = nfd.to_formula(&schema).unwrap();
    assert_eq!(f.quantifier_count(), 4);
    assert_eq!(
        f.to_string(),
        "∀course1 ∈ Course. ∀course2 ∈ Course. \
         ∀books1 ∈ course1.books. ∀books2 ∈ course2.books. \
         (books1.isbn = books2.isbn → books1.title = books2.title)"
    );
}

/// Example 2.3: the local dependency has ONE course variable ("only one
/// variable is introduced for labels in x0, except for the last label").
#[test]
fn example_2_3_translation() {
    let schema = course_schema();
    let nfd = Nfd::parse(&schema, "Course:students:[sid -> grade]").unwrap();
    let f = nfd.to_formula(&schema).unwrap();
    assert_eq!(
        f.to_string(),
        "∀course ∈ Course. ∀students1 ∈ course.students. ∀students2 ∈ course.students. \
         (students1.sid = students2.sid → students1.grade = students2.grade)"
    );
}

/// Structural invariant from Section 2.2: quantifier count =
/// (|x0| − 1 single variables) + 2 + 2·(number of labels in x1…xm that
/// have a descendant in some path).
#[test]
fn quantifier_count_formula() {
    for seed in 0..80u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE4E4);
        let Some(nfd) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let f = match nfd.to_formula(&schema) {
            Ok(f) => f,
            Err(_) => continue,
        };
        let trie = nfd::path::PathTrie::new(nfd.component_paths().cloned());
        let expected = nfd.base.path.len() + 2 + 2 * trie.internal_node_count();
        assert_eq!(
            f.quantifier_count(),
            expected,
            "seed {seed}: quantifier structure of {nfd}"
        );
    }
}

/// The antecedent has one equality per LHS path and the consequent is a
/// single equality of the RHS's last label.
#[test]
fn matrix_shape() {
    let schema = course_schema();
    let nfd = Nfd::parse(&schema, "Course:[time, students:sid -> cnum]").unwrap();
    let f = nfd.to_formula(&schema).unwrap();
    match f.matrix() {
        Formula::Implies(ante, cons) => {
            match &**ante {
                Formula::And(eqs) => assert_eq!(eqs.len(), 2),
                other => panic!("unexpected antecedent {other:?}"),
            }
            assert!(matches!(&**cons, Formula::Eq(a, _) if a.label.as_str() == "cnum"));
        }
        other => panic!("unexpected matrix {other:?}"),
    }
}

/// The degenerate constant form translates with a `true` antecedent.
#[test]
fn constant_form_translation() {
    let schema = course_schema();
    let nfd = Nfd::parse(&schema, "Course:[ -> time]").unwrap();
    let f = nfd.to_formula(&schema).unwrap();
    let shown = f.to_string();
    assert!(
        shown.contains("(true → course1.time = course2.time)"),
        "{shown}"
    );
}
