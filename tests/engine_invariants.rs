//! Structural invariants of the saturation engine, validated after
//! building on randomized and adversarial inputs, plus budget behaviour.

mod common;

use common::*;
use nfd::core::engine::Engine;
use nfd::core::nfd::parse_set;
use nfd::core::{CoreError, EmptySetPolicy, Nfd};
use nfd::govern::{Budget, ResourceKind};
use nfd::model::Schema;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn invariants_hold_on_random_inputs() {
    for seed in 0..120u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1171);
        let sigma = random_sigma(&mut rng, &schema, 3);
        let engine = Engine::new(&schema, &sigma).unwrap();
        engine
            .check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let gated = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
        gated
            .check_invariants()
            .unwrap_or_else(|e| panic!("seed {seed} (gated): {e}"));
    }
}

#[test]
fn invariants_hold_on_dense_flat_sigma() {
    // An adversarial flat input: a dense web of 2-attribute dependencies
    // drives resolution hard.
    let n = 7usize;
    let fields = (0..n)
        .map(|i| format!("a{i}: int"))
        .collect::<Vec<_>>()
        .join(", ");
    let schema = Schema::parse(&format!("W : {{<{fields}>}};")).unwrap();
    let mut text = String::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                text.push_str(&format!("W:[a{i} -> a{j}];"));
            }
        }
    }
    let sigma = parse_set(&schema, &text).unwrap();
    let engine = Engine::new(&schema, &sigma).unwrap();
    engine.check_invariants().unwrap();
    // Everything determines everything: every single-attribute LHS is a
    // key of the whole tuple.
    for i in 0..n {
        for j in 0..n {
            let goal = Nfd::parse(&schema, &format!("W:[a{i} -> a{j}]")).unwrap();
            assert!(engine.implies(&goal).unwrap());
        }
    }
}

#[test]
fn tight_budget_fails_cleanly_generous_budget_succeeds() {
    let schema = Schema::parse("R : {<A: int, B: int, C: int, D: int>};").unwrap();
    let sigma = parse_set(&schema, "R:[A -> B]; R:[B -> C]; R:[C -> D];").unwrap();
    // A budget of 2 cannot even hold Σ.
    match Engine::with_budget(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::limited(2),
    ) {
        Err(CoreError::Exhausted(r)) => assert_eq!(r.kind, ResourceKind::PoolDeps),
        other => panic!("expected budget exhaustion, got {:?}", other.err()),
    }
    // A generous budget succeeds and answers the chained goal.
    let engine = Engine::with_budget(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::limited(10_000),
    )
    .unwrap();
    assert!(engine
        .implies(&Nfd::parse(&schema, "R:[A -> D]").unwrap())
        .unwrap());
    engine.check_invariants().unwrap();
}

#[test]
fn pool_size_reports_and_is_stable_across_queries() {
    let schema = Schema::parse("R : {<A: int, B: int, C: int>};").unwrap();
    let sigma = parse_set(&schema, "R:[A -> B]; R:[B -> C];").unwrap();
    let engine = Engine::new(&schema, &sigma).unwrap();
    let before = engine.pool_size();
    assert!(before >= 2);
    // Queries never mutate the pool.
    for t in ["R:[A -> C]", "R:[C -> A]", "R:[B -> C]"] {
        let _ = engine.implies(&Nfd::parse(&schema, t).unwrap()).unwrap();
    }
    assert_eq!(engine.pool_size(), before);
}
