//! E7: the empty-set phenomena of Section 3.2, end to end.

mod common;

use nfd::core::engine::Engine;
use nfd::core::nfd::parse_set;
use nfd::core::{check, satisfy, EmptySetPolicy, Nfd};
use nfd::model::{render, Instance, Label, Schema};
use nfd::path::{Path, RootedPath};

fn ex32_schema() -> Schema {
    Schema::parse("R : { <A: int, B: {<C: int>}, D: int, E: int> };").unwrap()
}

/// The exact instance of Example 3.2.
fn ex32_instance(schema: &Schema) -> Instance {
    Instance::parse(
        schema,
        "R = { <A: 1, B: {}, D: 2, E: 3>,
               <A: 1, B: {}, D: 3, E: 4>,
               <A: 2, B: {<C: 3>}, D: 4, E: 5> };",
    )
    .unwrap()
}

/// The table itself: satisfies the premises of transitivity, violates the
/// conclusion.
#[test]
fn example_3_2_instance_breaks_transitivity() {
    let schema = ex32_schema();
    let inst = ex32_instance(&schema);
    assert!(inst.contains_empty_set());
    let holds = |t: &str| {
        check(&schema, &inst, &Nfd::parse(&schema, t).unwrap())
            .unwrap()
            .holds
    };
    assert!(holds("R:[A -> B:C]"), "premise 1");
    assert!(holds("R:[B:C -> D]"), "premise 2");
    assert!(!holds("R:[A -> D]"), "transitivity conclusion fails");
    // …and the prefix-rule counterpart on the same instance:
    assert!(holds("R:[B:C -> E]"));
    assert!(!holds("R:[B -> E]"));
    // The renderer shows the empty sets.
    let table = render::render_relation(&schema, &inst, Label::new("R"));
    assert!(table.contains('∅'), "{table}");
}

/// The engine's three regimes on Example 3.2's inference.
#[test]
fn engine_regimes() {
    let schema = ex32_schema();
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();

    // (a) No empty sets anywhere: classical transitivity applies.
    let strict = Engine::new(&schema, &sigma).unwrap();
    assert!(strict.implies(&goal).unwrap());

    // (b) Empty sets possible, nothing declared: refused.
    let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
    assert!(!pess.implies(&goal).unwrap());

    // (c) B declared non-empty (the paper's NON-NULL analogue): accepted —
    // and Example 3.2's instance is now excluded by the declaration.
    let ann = Engine::with_policy(
        &schema,
        &sigma,
        EmptySetPolicy::non_empty([RootedPath::parse("R:B").unwrap()]),
    )
    .unwrap();
    assert!(ann.implies(&goal).unwrap());
}

/// Gated conclusions remain sound over the annotated instance family:
/// instances respecting the annotation and satisfying Σ satisfy the
/// conclusion.
#[test]
fn annotated_conclusions_hold_on_annotated_instances() {
    let schema = ex32_schema();
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();
    // An instance with B non-empty everywhere.
    let inst = Instance::parse(
        &schema,
        "R = { <A: 1, B: {<C: 9>}, D: 2, E: 3>,
               <A: 1, B: {<C: 9>}, D: 2, E: 4>,
               <A: 2, B: {<C: 3>}, D: 4, E: 5> };",
    )
    .unwrap();
    assert!(satisfy::satisfies_all(&schema, &inst, &sigma).unwrap());
    assert!(check(&schema, &inst, &goal).unwrap().holds);
}

/// The `follows` relation substitutes for annotations: intermediates that
/// only traverse what the conclusion traverses stay sound.
#[test]
fn follows_based_transitivity() {
    let schema = Schema::parse("R : { <A: int, B: {<C: int, D: int>}> };").unwrap();
    // A → B:C and B:C → B:D. The intermediate B:C follows B:D (same
    // traversals), so the gated engine accepts A → B:D with no
    // annotations.
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> B:D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> B:D]").unwrap();
    let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
    assert!(pess.implies(&goal).unwrap());
    // Sanity: the conclusion genuinely holds on an empty-set instance
    // satisfying Σ.
    let inst = Instance::parse(&schema, "R = { <A: 1, B: {}>, <A: 1, B: {}> };").unwrap();
    assert!(satisfy::satisfies_all(&schema, &inst, &sigma).unwrap());
    assert!(check(&schema, &inst, &goal).unwrap().holds);
}

/// Decomposition fails with empty sets (Section 3.2's remark): we encode
/// the two-RHS dependency as two NFDs and show one chains and the other
/// doesn't, so they cannot be merged into one "X → {y1, y2}".
#[test]
fn no_uniform_decomposition_with_empty_sets() {
    let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int> };").unwrap();
    // With Σ = {A → B:C, B:C → D, B:C → B}, under the pessimistic policy:
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D]; R:[B:C -> B];").unwrap();
    let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
    // A → B is acceptable: the intermediate B:C follows B? No — B:C does
    // not follow B (B:C = (B):C and B is not a proper prefix of B…
    // actually B:C follows any path of which B is a proper prefix). It is
    // refused, like A → D:
    assert!(!pess
        .implies(&Nfd::parse(&schema, "R:[A -> D]").unwrap())
        .unwrap());
    assert!(!pess
        .implies(&Nfd::parse(&schema, "R:[A -> B]").unwrap())
        .unwrap());
    // But A → B:C stays derivable (it is in Σ).
    assert!(pess
        .implies(&Nfd::parse(&schema, "R:[A -> B:C]").unwrap())
        .unwrap());
}

/// Sanity across the policy lattice: everything the pessimistic engine
/// derives, the annotated engine derives; everything the annotated engine
/// derives, the strict engine derives.
#[test]
fn policy_monotonicity() {
    use common::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let relation = only_relation(&schema);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4242);
        let sigma = random_sigma(&mut rng, &schema, 2);
        // Annotate every set-valued path as non-empty: should coincide
        // with the strict engine.
        let rec = schema
            .relation_type(relation)
            .unwrap()
            .element_record()
            .unwrap();
        let all_sets: Vec<RootedPath> = nfd::path::typing::paths_of_record(rec)
            .into_iter()
            .filter(|p| {
                nfd::path::typing::resolve_in_record(rec, p)
                    .map(nfd::model::Type::is_set)
                    .unwrap_or(false)
            })
            .map(|p| RootedPath::new(relation, p))
            .collect();
        let strict = Engine::new(&schema, &sigma).unwrap();
        let pess = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
        let full_ann =
            Engine::with_policy(&schema, &sigma, EmptySetPolicy::non_empty(all_sets)).unwrap();
        for _ in 0..5 {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            let s = strict.implies(&goal).unwrap();
            let p = pess.implies(&goal).unwrap();
            let f = full_ann.implies(&goal).unwrap();
            assert!(
                !p || f,
                "pessimistic ⊆ fully-annotated (seed {seed}, {goal})"
            );
            assert!(!f || s, "fully-annotated ⊆ strict (seed {seed}, {goal})");
        }
    }
}

/// Empty relations: every NFD holds, including constants.
#[test]
fn empty_relation_is_a_model_of_everything() {
    let schema = ex32_schema();
    let inst = Instance::parse(&schema, "R = {};").unwrap();
    for t in ["R:[A -> D]", "R:[ -> A]", "R:[B -> B:C]"] {
        assert!(
            check(&schema, &inst, &Nfd::parse(&schema, t).unwrap())
                .unwrap()
                .holds
        );
    }
}

/// Path::parse on declared paths: declaring a deeper path does not imply
/// the shallower one.
#[test]
fn annotations_do_not_leak_upward() {
    let _schema = Schema::parse("R : { <A: {<B: {<C: int>}, D: int>}, E: int> };").unwrap();
    let pol = EmptySetPolicy::non_empty([RootedPath::parse("R:A:B").unwrap()]);
    let r = Label::new("R");
    assert!(pol.is_non_empty(r, &Path::parse("A:B").unwrap()));
    assert!(!pol.is_non_empty(r, &Path::parse("A").unwrap()));
    // A:B:C is defined only if both A and A:B are non-empty; A is not
    // declared.
    assert!(!pol.is_defined(r, &Path::parse("A:B:C").unwrap()));
}
