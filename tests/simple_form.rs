//! E6: the simple form of NFDs (Section 3.2) — push-in/pull-out
//! equivalence, Example 3.1's full-locality, and the semantic equivalence
//! of the two presentations on random instances.

mod common;

use common::*;
use nfd::core::engine::Engine;
use nfd::core::{rules, satisfy, simple, Nfd};
use nfd::model::Schema;
use nfd::path::Path;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Example 3.1: from f1 = R:[A:B:C, A:D → A:B:E], the locality rule can
/// reach R:[A, A:B:C, A:D → A:B:E] but not R:[A:B, A:B:C → A:B:E];
/// full-locality reaches the latter.
#[test]
fn example_3_1() {
    let schema = Schema::parse("R : { <A: {<B: {<C: int, E: {<W: int>}>}, D: int>}> };").unwrap();
    // The paper's f1 with E read as a path one level deeper (E is a set in
    // a valid schema, so the determined attribute is its W).
    let f1 = Nfd::parse(&schema, "R:[A:B:C, A:D -> A:B:E:W]").unwrap();

    // locality at A gives the weaker localized form…
    let local_a = rules::locality(&f1).unwrap();
    assert_eq!(
        local_a,
        Nfd::parse(&schema, "R:A:[B:C, D -> B:E:W]").unwrap()
    );
    // …whose pushed-in form has A in the LHS:
    assert_eq!(
        simple::to_simple(&local_a),
        Nfd::parse(&schema, "R:[A, A:B:C, A:D -> A:B:E:W]").unwrap()
    );

    // Full-locality at A:B drops A:D *without* adding A:
    let strong = rules::full_locality(&f1, &Path::parse("A:B").unwrap()).unwrap();
    assert_eq!(
        strong,
        Nfd::parse(&schema, "R:[A:B, A:B:C -> A:B:E:W]").unwrap()
    );

    // The locality rule alone cannot produce the strong form in one step
    // (the paper's point): its only conclusion from f1 localizes at A.
    assert_ne!(rules::locality(&f1).unwrap(), strong);
    // No single locality application yields a base of R with LHS
    // {A:B, A:B:C}: locality always extends the base path.
    assert!(rules::locality(&f1).unwrap().is_local());

    // The engine (with full-locality among its rules) derives both
    // consequences from f1. The two are incomparable: the strong form
    // does not determine anything given only set-level equality of A, and
    // the weak form needs A in the LHS.
    let engine = Engine::new(&schema, std::slice::from_ref(&f1)).unwrap();
    assert!(engine.implies(&strong).unwrap());
    assert!(engine.implies(&simple::to_simple(&local_a)).unwrap());
}

/// Push-in/pull-out preserve satisfaction on every instance — the §2.3
/// claim that the two NFD forms have the same expressive power.
#[test]
fn form_conversion_preserves_satisfaction() {
    let mut converted = 0usize;
    for seed in 0..100u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let Some(nfd) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        if !nfd.is_local() {
            continue;
        }
        let simple_form = simple::to_simple(&nfd);
        for k in 0..8u64 {
            let inst = random_instance_no_empty(seed * 13 + k, &schema);
            let a = satisfy::check(&schema, &inst, &nfd).unwrap().holds;
            let b = satisfy::check(&schema, &inst, &simple_form).unwrap().holds;
            assert_eq!(
                a, b,
                "forms disagree (seed {seed}, k {k}): {nfd} vs {simple_form}\nI = {inst}"
            );
            converted += 1;
        }
    }
    assert!(converted > 100, "only {converted} conversions exercised");
}

/// The same equivalence holds on instances with empty sets (push-in and
/// pull-out are not among the rules Section 3.2 needs to modify).
#[test]
fn form_conversion_preserves_satisfaction_with_empties() {
    let mut converted = 0usize;
    for seed in 0..100u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x8888);
        let Some(nfd) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        if !nfd.is_local() {
            continue;
        }
        let simple_form = simple::to_simple(&nfd);
        for k in 0..8u64 {
            let inst = random_instance_with_empties(seed * 17 + k, &schema);
            let a = satisfy::check(&schema, &inst, &nfd).unwrap().holds;
            let b = satisfy::check(&schema, &inst, &simple_form).unwrap().holds;
            assert_eq!(
                a, b,
                "forms disagree with empties (seed {seed}, k {k}): {nfd}"
            );
            converted += 1;
        }
    }
    assert!(converted > 100, "only {converted} conversions exercised");
}

/// Implication is invariant under the presentation of Σ and the goal.
#[test]
fn implication_invariant_under_form() {
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3333);
        let sigma = random_sigma(&mut rng, &schema, 2);
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let sigma_simple: Vec<Nfd> = sigma.iter().map(simple::to_simple).collect();
        let goal_simple = simple::to_simple(&goal);
        let e1 = Engine::new(&schema, &sigma).unwrap();
        let e2 = Engine::new(&schema, &sigma_simple).unwrap();
        let a = e1.implies(&goal).unwrap();
        assert_eq!(
            a,
            e1.implies(&goal_simple).unwrap(),
            "goal form (seed {seed})"
        );
        assert_eq!(a, e2.implies(&goal).unwrap(), "sigma form (seed {seed})");
        assert_eq!(
            a,
            e2.implies(&goal_simple).unwrap(),
            "both forms (seed {seed})"
        );
    }
}

/// `canonical_local` round-trips and produces equivalent NFDs.
#[test]
fn canonical_local_is_equivalent_and_stable() {
    for seed in 0..80u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2222);
        let Some(nfd) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let canon = simple::canonical_local(&nfd);
        assert!(
            simple::equivalent_form(&nfd, &canon),
            "seed {seed}: {nfd} vs {canon}"
        );
        // Idempotent.
        assert_eq!(simple::canonical_local(&canon), canon, "seed {seed}");
    }
}
