//! E8–E10 (completeness half of Theorem 3.1), property-tested through the
//! Appendix A construction.
//!
//! For random Σ, base path x0 and LHS set X, the constructed instance
//! must (Lemma A.1):
//!
//! * satisfy Σ, and
//! * satisfy `x0:[X → q]` exactly for the paths `q` in the closure
//!   `(x0, X, Σ)*`.
//!
//! Together the two bullets pin the engine from both sides: if the engine
//! ever derived too little (incomplete), some in-closure path would be
//! missing and the instance check would flag a mismatch against
//! satisfaction; if it derived too much (unsound), the constructed
//! instance would violate Σ or satisfy a claimed-underivable NFD.

mod common;

use common::*;
use nfd::core::engine::Engine;
use nfd::core::{construct, satisfy, Nfd};
use nfd::path::typing::paths_of_record;
use nfd::path::{Path, RootedPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn lemma_a1_trial(seed: u64, shape: SchemaShape) {
    let schema = random_schema(seed, shape);
    let relation = only_relation(&schema);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let sigma_size = rng.gen_range(1..=3);
    let sigma = random_sigma(&mut rng, &schema, sigma_size);
    let engine = Engine::new(&schema, &sigma).unwrap();

    // Random base path and X.
    let bases = base_candidates(&schema, relation);
    let base = bases[rng.gen_range(0..bases.len())].clone();
    let rec = nfd::path::typing::base_element_record(&schema, &base).unwrap();
    let rel_paths = paths_of_record(rec);
    if rel_paths.is_empty() {
        return;
    }
    let x: Vec<Path> = (0..rng.gen_range(0..=2usize))
        .map(|_| rel_paths[rng.gen_range(0..rel_paths.len())].clone())
        .collect();

    let c = construct::counterexample(&engine, &base, &x).unwrap();
    assert!(
        !c.instance.contains_empty_set(),
        "construction must stay in the no-empty-sets regime (seed {seed})"
    );

    // I ⊨ Σ.
    for nfd in &sigma {
        assert!(
            satisfy::check(&schema, &c.instance, nfd).unwrap().holds,
            "Lemma A.1 violated (seed {seed}): constructed instance does not satisfy {nfd}\n\
             Σ = {sigma:?}\nX = {x:?} at {base}\nI = {}",
            c.instance
        );
    }

    // Satisfaction of x0:[X → q] ⟺ q in the closure.
    let in_closure: std::collections::HashSet<&RootedPath> = c.closure.iter().collect();
    for q in &rel_paths {
        let rooted = RootedPath::new(relation, base.path.join(q));
        let goal = Nfd::new(base.clone(), x.clone(), q.clone()).unwrap();
        let holds = satisfy::check(&schema, &c.instance, &goal).unwrap().holds;
        assert_eq!(
            holds,
            in_closure.contains(&rooted),
            "Lemma A.1 mismatch (seed {seed}) for q = {q}: satisfaction {holds} vs \
             closure membership {}\nΣ = {sigma:?}\nX = {x:?} at {base}\nclosure = {:?}\nI = {}",
            in_closure.contains(&rooted),
            c.closure,
            c.instance
        );
    }
}

#[test]
fn lemma_a1_randomized_shallow() {
    for seed in 0..200 {
        lemma_a1_trial(
            seed,
            SchemaShape {
                max_depth: 1,
                fields: (2, 4),
                set_prob: 0.5,
            },
        );
    }
}

#[test]
fn lemma_a1_randomized_default() {
    for seed in 200..400 {
        lemma_a1_trial(seed, SchemaShape::default());
    }
}

#[test]
fn lemma_a1_randomized_deep() {
    for seed in 400..520 {
        lemma_a1_trial(
            seed,
            SchemaShape {
                max_depth: 3,
                fields: (2, 3),
                set_prob: 0.6,
            },
        );
    }
}

/// The closure is monotone in X and idempotent — two structural sanity
/// properties the completeness argument leans on.
#[test]
fn closure_is_monotone_and_idempotent() {
    for seed in 0..80u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let relation = only_relation(&schema);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
        let sigma = random_sigma(&mut rng, &schema, 2);
        let engine = Engine::new(&schema, &sigma).unwrap();
        let base = RootedPath::relation_only(relation);
        let rec = schema
            .relation_type(relation)
            .unwrap()
            .element_record()
            .unwrap();
        let paths = paths_of_record(rec);
        if paths.len() < 2 {
            continue;
        }
        let x1 = vec![paths[rng.gen_range(0..paths.len())].clone()];
        let mut x2 = x1.clone();
        x2.push(paths[rng.gen_range(0..paths.len())].clone());

        let c1: std::collections::HashSet<_> =
            engine.closure(&base, &x1).unwrap().into_iter().collect();
        let c2: std::collections::HashSet<_> =
            engine.closure(&base, &x2).unwrap().into_iter().collect();
        assert!(
            c1.is_subset(&c2),
            "closure not monotone (seed {seed}): {x1:?} vs {x2:?}"
        );

        // Idempotence: closing the closure adds nothing.
        let c1_paths: Vec<Path> = c1.iter().map(|r| r.path.clone()).collect();
        let c1_again: std::collections::HashSet<_> = engine
            .closure(&base, &c1_paths)
            .unwrap()
            .into_iter()
            .collect();
        assert_eq!(c1, c1_again, "closure not idempotent (seed {seed})");
    }
}

/// Degenerate X = ∅: the closure of the empty set is exactly the paths
/// that are derivably constant, and the construction still works.
#[test]
fn empty_lhs_closure_and_construction() {
    let schema = nfd::model::Schema::parse("R : {<A: int, B: {<C: int>}, D: int>};").unwrap();
    let sigma = nfd::core::nfd::parse_set(&schema, "R:[ -> A]; R:[A -> D];").unwrap();
    let engine = Engine::new(&schema, &sigma).unwrap();
    let base = RootedPath::parse("R").unwrap();
    let c = engine.closure(&base, &[]).unwrap();
    let shown: Vec<String> = c.iter().map(|p| p.to_string()).collect();
    assert_eq!(shown, ["R:A", "R:D"]);
    let built = construct::counterexample(&engine, &base, &[]).unwrap();
    for nfd in &sigma {
        assert!(satisfy::check(&schema, &built.instance, nfd).unwrap().holds);
    }
    // B:C is not constant: the instance must witness that.
    let goal = Nfd::parse(&schema, "R:[ -> B:C]").unwrap();
    assert!(
        !satisfy::check(&schema, &built.instance, &goal)
            .unwrap()
            .holds
    );
}
