//! Concurrency tests for the read-parallel registry (`nfdtool serve`
//! with `--workers N`).
//!
//! Two load-bearing pins:
//!
//! 1. **Bit-identity under concurrency.** N clients hammering one hot
//!    tenant through the parallel worker pool receive byte-for-byte the
//!    responses a sequential (`workers = 1`) daemon gives for the same
//!    requests — the pool may reorder *which* reader answers, never
//!    *what* is answered.
//! 2. **Epoch atomicity under interleaved mutation.** While a writer
//!    flips Σ back and forth with ADDDEP/DROPDEP, every concurrently
//!    served BATCH sees either the old Σ or the new Σ in full: two
//!    goals whose verdicts both hinge on the mutated dependency always
//!    answer as a pair, never half-applied.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use nfd::prelude::*;
use nfd::serve::{Registry, RegistryConfig};

fn course_sources() -> (String, String) {
    let schema = std::fs::read_to_string("examples/data/course.nfds").expect("course.nfds");
    let deps = std::fs::read_to_string("examples/data/course.nfdd").expect("course.nfdd");
    (one_line(&schema), one_line(&deps))
}

fn one_line(src: &str) -> String {
    src.lines()
        .map(|line| line.split('#').next().unwrap_or(""))
        .flat_map(str::split_whitespace)
        .collect::<Vec<_>>()
        .join(" ")
}

fn start(
    registry_cfg: RegistryConfig,
    server_cfg: ServerConfig,
) -> (SocketAddr, JoinHandle<ServerStats>) {
    let server =
        Server::bind("127.0.0.1:0", server_cfg, Registry::new(registry_cfg)).expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, std::thread::spawn(move || server.run().expect("run")))
}

fn quick_server_cfg() -> ServerConfig {
    ServerConfig {
        idle_poll_ms: 5,
        // Enough admission slots for every concurrent client below —
        // this suite tests the worker pool, not the shed gate.
        max_inflight: 32,
        queue_depth: 64,
        ..ServerConfig::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    }
}

/// The read-only request corpus: implied, not-implied and nested goals,
/// plus BATCH, CLOSURE and KEYS — everything the worker pool serves.
fn read_requests() -> Vec<String> {
    let goals = [
        "Course:[time, students:sid -> books]",
        "Course:[students:sid -> books]",
        "Course:[cnum -> time]",
        "Course:[time -> cnum]",
        "Course:[cnum -> books:title]",
        "Course:[books:isbn -> books:title]",
        "Course:students:[sid -> grade]",
        "Course:[students:sid -> students:age]",
    ];
    let mut reqs: Vec<String> = goals
        .iter()
        .map(|g| format!("IMPLIES course {g}"))
        .collect();
    reqs.push(format!("BATCH course {};", goals.join("; ")));
    reqs.push("CLOSURE course Course cnum".to_string());
    reqs.push("KEYS course Course".to_string());
    reqs
}

/// Pin 1: every response from the 8-worker pool, under 8 concurrent
/// clients, is byte-identical to the sequential daemon's answer for the
/// same request line.
#[test]
fn concurrent_clients_are_bit_identical_to_the_sequential_daemon() {
    let (schema_src, deps_src) = course_sources();
    let load = format!("LOAD course {schema_src} | {deps_src}");
    let requests = read_requests();

    // Sequential replay first: workers=1 is the reference daemon.
    let expected: Vec<String> = {
        let (addr, server) = start(
            RegistryConfig {
                workers: 1,
                ..RegistryConfig::default()
            },
            quick_server_cfg(),
        );
        let mut c = Client::connect(addr);
        assert!(c.ask(&load).starts_with("OK loaded"));
        let expected = requests.iter().map(|r| c.ask(r)).collect();
        assert_eq!(c.ask("SHUTDOWN"), "OK draining");
        server.join().expect("server");
        expected
    };

    let (addr, server) = start(
        RegistryConfig {
            workers: 8,
            ..RegistryConfig::default()
        },
        quick_server_cfg(),
    );
    let mut c = Client::connect(addr);
    assert!(c.ask(&load).starts_with("OK loaded"));

    let clients: Vec<JoinHandle<()>> = (0..8)
        .map(|client| {
            let requests = requests.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for round in 0..3 {
                    // Stagger the order per client so the pool genuinely
                    // interleaves different verbs at once.
                    for i in 0..requests.len() {
                        let at = (i + client + round) % requests.len();
                        assert_eq!(
                            c.ask(&requests[at]),
                            expected[at],
                            "client {client} diverged from the sequential daemon on `{}`",
                            requests[at]
                        );
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 0);
}

/// Pin 2: readers racing a writer never observe a half-applied Σ.
///
/// The writer flips `Course:[time -> cnum]` in and out of Σ. Both BATCH
/// goals — the dependency itself and `Course:[time -> books]`, which is
/// implied exactly when the flipped dependency is present (via
/// `cnum -> books`) — must answer as a pair: the full old epoch or the
/// full new epoch, never one goal from each.
#[test]
fn interleaved_mutations_never_expose_a_half_applied_sigma() {
    let (schema_src, deps_src) = course_sources();
    let flipped = "Course:[time -> cnum]";
    let batch = format!("BATCH course {flipped}; Course:[time -> books];");

    // The two legal responses, computed differentially from direct
    // in-process sessions over each Σ state.
    let schema = Schema::parse(&schema_src).expect("schema parses");
    let base_sigma = nfd::core::nfd::parse_set(&schema, &deps_src).expect("deps parse");
    let mutated_sigma = {
        let mut sigma = base_sigma.clone();
        sigma.push(Nfd::parse(&schema, flipped).expect("flipped dep parses"));
        sigma
    };
    let verdicts = |sigma: &[Nfd]| -> String {
        let session = Session::new(&schema, sigma).expect("direct session");
        let words: Vec<&str> = [flipped, "Course:[time -> books]"]
            .iter()
            .map(|g| {
                if session.implies_text(g).expect("direct verdict") {
                    "implied"
                } else {
                    "not-implied"
                }
            })
            .collect();
        format!("OK {}", words.join(","))
    };
    let old_epoch = verdicts(&base_sigma);
    let new_epoch = verdicts(&mutated_sigma);
    assert_ne!(
        old_epoch, new_epoch,
        "fixture drifted: the mutation no longer flips the batch verdicts"
    );

    let (addr, server) = start(
        RegistryConfig {
            workers: 8,
            ..RegistryConfig::default()
        },
        quick_server_cfg(),
    );
    let mut c = Client::connect(addr);
    assert!(c
        .ask(&format!("LOAD course {schema_src} | {deps_src}"))
        .starts_with("OK loaded"));

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<JoinHandle<u64>> = (0..4)
        .map(|reader| {
            let batch = batch.clone();
            let old_epoch = old_epoch.clone();
            let new_epoch = new_epoch.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut served = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let resp = c.ask(&batch);
                    assert!(
                        resp == old_epoch || resp == new_epoch,
                        "reader {reader} saw a half-applied Σ: `{resp}` \
                         (legal: `{old_epoch}` | `{new_epoch}`)"
                    );
                    served += 1;
                }
                served
            })
        })
        .collect();

    // The writer flips Σ back and forth through full epoch swaps; every
    // mutation must succeed (the write path may not be starved or
    // wedged by the racing readers).
    for _ in 0..6 {
        let added = c.ask(&format!("ADDDEP course {flipped}"));
        assert!(added.starts_with("OK added"), "{added}");
        let dropped = c.ask(&format!("DROPDEP course {flipped}"));
        assert!(dropped.starts_with("OK dropped"), "{dropped}");
    }
    done.store(true, Ordering::Relaxed);
    let served: u64 = readers
        .into_iter()
        .map(|h| h.join().expect("reader thread"))
        .sum();

    assert!(served > 0, "readers served nothing while the writer ran");
    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 0);
}
