//! Exhaustive corruption sweep over the snapshot byte format.
//!
//! For *every* single-byte flip and *every* truncation length of a
//! frozen session image, exactly one of two things must happen:
//!
//! 1. the image still decodes and thaws **bit-identically** (possible
//!    in principle for flips the checks cannot distinguish, e.g. inside
//!    ignored padding — the format has none today, so in practice every
//!    flip is caught), or
//! 2. the image is rejected with a **typed [`nfd::snap::SnapError`]** —
//!    never a panic, never a silently wrong session — and the caller
//!    falls back to a fresh compile that answers correctly.
//!
//! The lenient decoder is swept too: a salvage either fails typed or
//! recovers source sections that parse back to the original schema/Σ.

use nfd::prelude::*;
use nfd::snap;
use nfd_core::nfd::parse_set;
use nfd_path::RootedPath;
use std::panic::{catch_unwind, AssertUnwindSafe};

const SCHEMA: &str = "Course : { <cnum: string, time: int,
    students: {<sid: int, grade: string>}> };";

const SIGMA: &str = "
    Course:[cnum -> time];
    Course:students:[sid -> grade];
    Course:[time, students:sid -> cnum];";

struct Baseline {
    schema: Schema,
    sigma: Vec<Nfd>,
    bytes: Vec<u8>,
    pool: String,
}

fn baseline() -> Baseline {
    let schema = Schema::parse(SCHEMA).unwrap();
    let sigma = parse_set(&schema, SIGMA).unwrap();
    let session = Session::new(&schema, &sigma).unwrap();
    // Warm one closure so the image carries a CACHE section: the sweep
    // must cover every section tag the format can emit.
    let base = RootedPath::parse("Course").unwrap();
    session
        .closure(&base, &[nfd_path::Path::parse("cnum").unwrap()])
        .unwrap();
    let image = session.freeze();
    assert!(
        !image.cache.is_empty(),
        "baseline image must exercise the CACHE section"
    );
    let pool = format!("{:?}", session.engine().pool_dump());
    Baseline {
        schema,
        sigma,
        bytes: snap::encode(&image),
        pool,
    }
}

/// Feeds one corrupted image through the strict decoder and (when it
/// decodes) the thaw path, asserting the only two permitted outcomes.
/// Returns `true` when the corruption was detected (rejected somewhere).
fn assert_sound(b: &Baseline, corrupted: &[u8], what: &str) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(|| match snap::decode(corrupted) {
        Err(_) => Ok(true),
        Ok(image) => match Session::thaw(
            &b.schema,
            &b.sigma,
            EmptySetPolicy::Forbidden,
            Budget::standard(),
            nfd_core::TierPreference::Auto,
            &image,
        ) {
            Err(_) => Ok(true),
            Ok(session) => {
                // The corruption slipped past every check: the only
                // acceptable reason is that it did not change the
                // decoded meaning — the thawed session must be
                // bit-identical to the fresh baseline.
                if format!("{:?}", session.engine().pool_dump()) == b.pool {
                    Ok(false)
                } else {
                    Err("thawed a DIFFERENT session".to_string())
                }
            }
        },
    }));
    match outcome {
        Ok(Ok(rejected)) => rejected,
        Ok(Err(msg)) => panic!("{what}: {msg}"),
        Err(_) => panic!("{what}: decoder or thaw PANICKED"),
    }
}

/// The lenient decoder under the same corruption: either a typed error,
/// or a salvage whose source sections parse back to the originals.
fn assert_lenient_sound(b: &Baseline, corrupted: &[u8], what: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(salvaged) = snap::decode_lenient(corrupted) {
            let image = salvaged.snapshot;
            let schema = Schema::parse(&image.schema_text)
                .map_err(|e| format!("salvaged schema does not parse: {e}"))?;
            if schema.to_string() != b.schema.to_string() {
                return Err("salvaged a DIFFERENT schema".to_string());
            }
            let sigma = parse_set(&schema, &image.sigma_text)
                .map_err(|e| format!("salvaged Σ does not parse: {e}"))?;
            if sigma != b.sigma {
                return Err("salvaged a DIFFERENT Σ".to_string());
            }
        }
        Ok(())
    }));
    match outcome {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => panic!("{what}: {msg}"),
        Err(_) => panic!("{what}: lenient decoder PANICKED"),
    }
}

#[test]
fn every_single_byte_flip_is_rejected_or_harmless() {
    let b = baseline();
    let mut undetected = 0usize;
    for i in 0..b.bytes.len() {
        for mask in [0xFFu8, 0x01] {
            let mut corrupted = b.bytes.clone();
            corrupted[i] ^= mask;
            let what = format!("flip byte {i} mask {mask:#04x}");
            if !assert_sound(&b, &corrupted, &what) {
                undetected += 1;
            }
            assert_lenient_sound(&b, &corrupted, &what);
        }
    }
    // Every byte of the format is covered by the magic, a length bound,
    // a section CRC or the whole-file CRC, so nothing slips through.
    assert_eq!(undetected, 0, "{undetected} flips thawed undetected");
}

#[test]
fn every_truncation_length_is_rejected() {
    let b = baseline();
    for len in 0..b.bytes.len() {
        let corrupted = &b.bytes[..len];
        let what = format!("truncate to {len} bytes");
        assert!(
            assert_sound(&b, corrupted, &what),
            "{what}: a strict prefix of the image must never decode"
        );
        assert_lenient_sound(&b, corrupted, &what);
    }
    // Trailing garbage is the mirror image of truncation.
    let mut extended = b.bytes.clone();
    extended.push(0);
    assert!(
        assert_sound(&b, &extended, "one trailing byte"),
        "trailing bytes after END must be rejected"
    );
}

#[test]
fn rejected_snapshots_degrade_to_a_correct_fresh_compile() {
    let b = baseline();
    // The caller-side contract exercised by the CLI and the daemon:
    // when the image is rejected, a fresh compile of the live sources
    // serves the query stream with correct answers.
    let mut corrupted = b.bytes.clone();
    let mid = corrupted.len() / 2;
    corrupted[mid] ^= 0xFF;
    assert!(snap::decode(&corrupted).is_err());
    let fallback = Session::new(&b.schema, &b.sigma).unwrap();
    assert!(fallback
        .implies_text("Course:[time, students:sid -> cnum]")
        .unwrap());
    assert!(!fallback.implies_text("Course:[time -> cnum]").unwrap());
    assert_eq!(format!("{:?}", fallback.engine().pool_dump()), b.pool);
}

#[test]
fn version_skew_is_a_typed_rejection() {
    let b = baseline();
    // The format version rides little-endian right after the magic.
    let mut skewed = b.bytes.clone();
    let at = snap::MAGIC.len();
    skewed[at] = skewed[at].wrapping_add(1);
    match snap::decode(&skewed) {
        Err(snap::SnapError::UnsupportedVersion(v)) => {
            assert_eq!(v, snap::FORMAT_VERSION + 1);
        }
        other => panic!("version skew must be typed, got {other:?}"),
    }
    // Bad magic likewise.
    let mut alien = b.bytes.clone();
    alien[0] ^= 0xFF;
    assert!(matches!(
        snap::decode(&alien),
        Err(snap::SnapError::BadMagic)
    ));
}
