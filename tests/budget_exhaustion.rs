//! Resource governance: budgets, deadlines and cancellation produce
//! `Exhausted` — an honest "don't know" — and never a wrong verdict, a
//! panic, or a runaway computation.

use nfd::core::nfd::parse_set;
use nfd::core::CoreError;
use nfd::prelude::*;
use nfd::session::AttemptOutcome;
use std::time::{Duration, Instant};

fn course() -> (Schema, Vec<Nfd>) {
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .unwrap();
    let sigma = parse_set(
        &schema,
        "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
         Course:[books:isbn -> books:title];
         Course:students:[sid -> grade];
         Course:[students:sid -> students:age];
         Course:[time, students:sid -> cnum];",
    )
    .unwrap();
    (schema, sigma)
}

fn worked_example() -> (Schema, Vec<Nfd>) {
    let schema =
        Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A:B:C, D -> A:E:F]; R:A:[B -> E:G];").unwrap();
    (schema, sigma)
}

/// E1–E12: the paper's worked goals. The cascade under an unlimited
/// budget must agree with the plain (unbudgeted) session verdict on every
/// one, and must report which decider answered.
#[test]
fn cascade_agrees_with_unbudgeted_verdicts_on_paper_goals() {
    let (course_schema, course_sigma) = course();
    let (ex_schema, ex_sigma) = worked_example();
    let course_goals = [
        "Course:[time, students:sid -> books]",  // E1
        "Course:[cnum -> students:age]",         // E2
        "Course:[time -> cnum]",                 // E3
        "Course:[books:title -> books:isbn]",    // E4
        "Course:[cnum -> time]",                 // E5
        "Course:[students:sid -> students:age]", // E6
        "Course:students:[sid -> grade]",        // E7
        "Course:[time, students:sid -> cnum]",   // E8
    ];
    let ex_goals = [
        "R:A:[B -> E]",          // E9
        "R:[D -> A]",            // E10
        "R:[A -> D]",            // E11
        "R:[A:B:C, D -> A:E:F]", // E12
    ];
    for (schema, sigma, goals) in [
        (&course_schema, &course_sigma, &course_goals[..]),
        (&ex_schema, &ex_sigma, &ex_goals[..]),
    ] {
        let session = Session::new(schema, sigma).unwrap();
        for goal_text in goals {
            let goal = Nfd::parse(schema, goal_text).unwrap();
            let truth = session.implies(&goal).unwrap();
            let decision = session.implies_with(&goal, &Budget::unlimited()).unwrap();
            assert_eq!(
                decision.verdict.as_bool(),
                Some(truth),
                "cascade disagrees with unbudgeted verdict on {goal_text}"
            );
            assert!(decision.answered_by().is_some(), "{goal_text}");
        }
    }
}

/// Sweeping budget sizes from starvation upward: every answer that does
/// come back matches the unbudgeted truth; everything else is Exhausted.
/// No budget size may produce a wrong verdict.
#[test]
fn tiny_budgets_never_give_wrong_verdicts() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    for goal_text in [
        "Course:[time, students:sid -> books]",
        "Course:[time -> cnum]",
        "Course:[cnum -> students:grade]",
    ] {
        let goal = Nfd::parse(&schema, goal_text).unwrap();
        let truth = session.implies(&goal).unwrap();
        for n in 0..40u64 {
            let decision = session.implies_with(&goal, &Budget::limited(n)).unwrap();
            match decision.verdict {
                Verdict::Implied => {
                    assert!(truth, "budget {n} fabricated `implied` on {goal_text}")
                }
                Verdict::NotImplied => {
                    assert!(!truth, "budget {n} fabricated `not implied` on {goal_text}")
                }
                Verdict::Exhausted(_) => {}
            }
        }
        // A generous budget always answers, and correctly.
        let decision = session
            .implies_with(&goal, &Budget::limited(1_000_000))
            .unwrap();
        assert_eq!(decision.verdict.as_bool(), Some(truth), "{goal_text}");
    }
}

/// When saturation is starved but the independent deciders are not, the
/// cascade falls through and still produces the right answer — and the
/// attempt log records the fallback.
#[test]
fn cascade_falls_back_when_saturation_is_starved() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();
    let truth = session.implies(&goal).unwrap();

    let mut starved = Budget::unlimited();
    starved.max_pool_deps = 1; // cannot even hold Σ
    let decision = session.implies_with(&goal, &starved).unwrap();
    assert_eq!(decision.verdict.as_bool(), Some(truth));
    let by = decision.answered_by().unwrap();
    assert_ne!(by, "saturation", "saturation should have been starved");
    assert!(
        matches!(
            decision.attempts[0].outcome,
            AttemptOutcome::Exhausted(ref r) if r.kind == ResourceKind::PoolDeps
        ),
        "first attempt should record saturation's exhaustion: {:?}",
        decision.attempts[0]
    );
}

/// Under a non-strict empty-set policy the chase and logic-eval are not
/// sound, so the cascade must skip them rather than risk a wrong verdict.
#[test]
fn fallbacks_are_skipped_under_non_strict_policies() {
    let (schema, sigma) = course();
    let session = Session::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
    let goal = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();

    let mut starved = Budget::unlimited();
    starved.max_pool_deps = 1;
    let decision = session.implies_with(&goal, &starved).unwrap();
    assert!(decision.verdict.is_exhausted());
    for a in &decision.attempts[1..] {
        assert!(
            matches!(a.outcome, AttemptOutcome::Skipped(_)),
            "{:?} should have been skipped under a pessimistic policy",
            a.decider
        );
    }
}

/// A pre-cancelled token stops everything immediately: session build and
/// queries both return `Cancelled` exhaustion, promptly.
#[test]
fn precancelled_token_stops_build_and_queries() {
    let (schema, sigma) = course();
    let token = CancelToken::new();
    token.cancel();

    let start = Instant::now();
    match Session::with_budget(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::standard().with_cancel(token.clone()),
    ) {
        Err(CoreError::Exhausted(r)) => assert_eq!(r.kind, ResourceKind::Cancelled),
        Ok(_) => panic!("expected cancelled build"),
        Err(e) => panic!("expected cancellation, got {e}"),
    }
    assert!(start.elapsed() < Duration::from_secs(5));

    let session = Session::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();
    let decision = session
        .implies_with(&goal, &Budget::unlimited().with_cancel(token))
        .unwrap();
    assert!(decision.verdict.is_exhausted());
}

/// Cancelling from another thread interrupts a large saturation mid-run.
/// The run either observes the cancellation (the expected case) or — on
/// an implausibly fast machine — completes first; it must never hang,
/// panic, or return a fabricated verdict.
#[test]
fn cancellation_interrupts_saturation_mid_run() {
    // A dense cyclic FD chain over many attributes: saturation derives
    // O(n²) dependencies, far more work than the cancellation delay.
    let n = 220usize;
    let attrs = (0..n)
        .map(|i| format!("a{i}: int"))
        .collect::<Vec<_>>()
        .join(", ");
    let schema = Schema::parse(&format!("W : {{<{attrs}>}};")).unwrap();
    let deps = (0..n)
        .map(|i| format!("W:[a{i} -> a{}];", (i + 1) % n))
        .collect::<String>();
    let sigma = parse_set(&schema, &deps).unwrap();

    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        })
    };
    let start = Instant::now();
    let built = Engine::with_budget(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::unlimited().with_cancel(token),
    );
    let elapsed = start.elapsed();
    canceller.join().unwrap();
    match built {
        Err(CoreError::Exhausted(r)) => assert_eq!(r.kind, ResourceKind::Cancelled),
        Ok(_) => {} // finished before the cancel fired; nothing to check
        Err(e) => panic!("unexpected error: {e}"),
    }
    // Promptness: cancellation (or completion) must not be orders of
    // magnitude slower than the polling granularity.
    assert!(elapsed < Duration::from_secs(60), "took {elapsed:?}");
}

/// Adversarial nesting vs. a wall-clock deadline: the chase's template
/// for a deeply nested schema is exponential, but the deadline cuts the
/// run off within the polling granularity — well before memory blows up.
#[test]
fn deadline_bounds_adversarial_chase() {
    let depth = 14usize;
    let mut ty = String::from("int");
    for level in (0..depth).rev() {
        ty = format!("{{<f{level}: {ty}, g{level}: int>}}");
    }
    let schema = Schema::parse(&format!("R : {ty};")).unwrap();
    let goal_path = (0..depth)
        .map(|l| format!("f{l}"))
        .collect::<Vec<_>>()
        .join(":");
    let goal_text = format!("R:[{goal_path} -> g0]");
    let goal = Nfd::parse(&schema, &goal_text).unwrap();

    let budget = Budget::unlimited().with_timeout_ms(100);
    let start = Instant::now();
    let result = nfd::chase::chase_with(&schema, &[], &goal, &budget);
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "deadline did not bound the run: {elapsed:?}"
    );
    if let Err(e) = result {
        assert!(
            matches!(e, nfd::chase::ChaseError::Exhausted(_)),
            "expected exhaustion, got {e}"
        );
    }
}

/// The three-valued verdict helpers behave.
#[test]
fn verdict_accessors() {
    assert_eq!(Verdict::from_bool(true), Verdict::Implied);
    assert_eq!(Verdict::Implied.as_bool(), Some(true));
    assert_eq!(Verdict::NotImplied.as_bool(), Some(false));
    let r = ResourceReport::counter(ResourceKind::ChaseSteps, 5, 6);
    assert_eq!(Verdict::Exhausted(r.clone()).as_bool(), None);
    assert!(Verdict::Exhausted(r).is_exhausted());
}

/// Regression: a zero-millisecond timeout is a budget that is *already*
/// past its deadline. It must trip on the first liveness check with a
/// coherent deadline report (limit = the configured timeout, used ≥
/// limit), not underflow, hang, or report a mislabeled counter.
#[test]
fn zero_timeout_exhausts_immediately_with_a_coherent_report() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();

    let start = Instant::now();
    let decision = session
        .implies_with(&goal, &Budget::standard().with_timeout_ms(0))
        .unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "must trip, not spin"
    );
    match &decision.verdict {
        Verdict::Exhausted(r) => {
            assert_eq!(r.kind, ResourceKind::Deadline);
            assert_eq!(r.limit, 0, "the report names the configured timeout");
            assert!(
                r.to_string().contains("deadline"),
                "report reads as a deadline: {r}"
            );
        }
        other => panic!("a zero deadline cannot produce a verdict: {other:?}"),
    }

    // Build-path too: compiling a session under an expired deadline.
    match Session::with_budget(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::standard().with_timeout_ms(0),
    ) {
        Err(CoreError::Exhausted(r)) => assert_eq!(r.kind, ResourceKind::Deadline),
        Ok(_) => panic!("expected an exhausted build"),
        Err(e) => panic!("expected deadline exhaustion, got {e}"),
    }
}

/// Regression: zero-limit counters trip on the *first* unit of work with
/// `used > limit` in the report, never a wrap-around or a free pass.
#[test]
fn zero_limit_counters_trip_coherently() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();

    let decision = session.implies_with(&goal, &Budget::limited(0)).unwrap();
    match &decision.verdict {
        Verdict::Exhausted(r) => {
            assert_eq!(r.limit, 0);
            assert!(r.used > r.limit, "used ({}) must exceed limit 0", r.used);
        }
        other => panic!("a zero budget cannot produce a verdict: {other:?}"),
    }
}

/// `Budget::escalate` is the retry loop's engine: each step multiplies
/// every finite counter and re-arms the deadline, so a starved budget
/// eventually decides. The counters must grow strictly even from zero and
/// under nonsense factors.
#[test]
fn retry_escalation_heals_a_starved_budget() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[time -> cnum]").unwrap();
    let truth = session.implies(&goal).unwrap();

    // Budget 1 starves every decider; factor 10 needs only a few rounds
    // to reach the few hundred pool entries the Course schema wants.
    let starved = Budget::limited(1);
    assert!(session
        .implies_with(&goal, &starved)
        .unwrap()
        .verdict
        .is_exhausted());

    let policy = RetryPolicy::new(6).with_escalation(10.0);
    let decision = session.implies_retry(&goal, &starved, &policy).unwrap();
    assert_eq!(
        decision.verdict.as_bool(),
        Some(truth),
        "escalation must eventually answer: {decision:?}"
    );
    let max_round = decision.attempts.iter().map(|a| a.round).max().unwrap();
    assert!(
        (1..6).contains(&max_round),
        "needed at least one but not all retries, got {max_round}"
    );
    // Earlier rounds honestly recorded their exhaustion.
    assert!(decision
        .attempts
        .iter()
        .any(|a| a.round == 0 && matches!(a.outcome, AttemptOutcome::Exhausted(_))));
}

/// Batch retry heals a genuinely starved batch: the first goal exhausts,
/// the rest are batch-cancelled, and the retry pass re-runs them all —
/// cancelled goals from the base budget, the exhausted one escalated.
#[test]
fn batch_retry_heals_a_starved_batch() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = [
        "Course:[time, students:sid -> books]",
        "Course:[time -> cnum]",
        "Course:[cnum -> students:age]",
        "Course:[books:title -> books:isbn]",
    ]
    .iter()
    .map(|t| Nfd::parse(&schema, t).unwrap())
    .collect();
    let truth: Vec<bool> = goals.iter().map(|g| session.implies(g).unwrap()).collect();

    let starved = Budget::limited(1);
    let plain = session.implies_batch(&goals, &starved, 4).unwrap();
    assert_eq!(plain.first_exhausted, Some(0), "budget 1 starves the batch");

    let policy = RetryPolicy::new(8).with_escalation(10.0);
    let healed = session
        .implies_batch_retry(&goals, &starved, 4, &policy)
        .unwrap();
    assert_eq!(healed.first_exhausted, None, "every goal healed");
    assert_eq!(healed.failed_count(), 0);
    for (i, slot) in healed.decisions.iter().enumerate() {
        let d = slot.as_ref().unwrap();
        assert_eq!(
            d.verdict.as_bool(),
            Some(truth[i]),
            "goal {i}: retried batch must match ground truth"
        );
        assert!(
            d.attempts.iter().any(|a| a.round >= 1),
            "goal {i}: the log records its retries"
        );
    }
}

/// A cancelled budget is never retried: escalation must not re-arm a
/// budget whose token the caller has revoked.
#[test]
fn retry_honours_cancellation() {
    let (schema, sigma) = course();
    let session = Session::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::standard().with_cancel(token);

    let policy = RetryPolicy::new(5).with_escalation(10.0);
    let start = Instant::now();
    let decision = session.implies_retry(&goal, &budget, &policy).unwrap();
    assert!(start.elapsed() < Duration::from_secs(5));
    assert!(decision.verdict.is_exhausted());
    assert_eq!(
        decision.attempts.iter().map(|a| a.round).max(),
        Some(0),
        "no retry rounds against a cancelled token"
    );
}
