//! Concurrency invariants of the shared [`Session`] and the batch
//! executor: many threads hammering one compiled session must observe
//! identical answers regardless of scheduling, and cancellation — whether
//! from the batch's own first exhaustion or an external token — must
//! preempt the budgeted loops promptly (they poll every ~4096 work units,
//! so a cancelled run does a small fraction of the full work).

mod common;

use common::{course_schema, course_sigma, random_nfd, random_schema, random_sigma, SchemaShape};
use nfd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Fisher–Yates over goal indices, so every thread visits the same goals
/// in its own seeded order.
fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

/// A flat transitive chain `a0 → a1 → … → a{n-1}` — saturation cost grows
/// superlinearly with `n`, which makes it the heavy workload for the
/// promptness tests.
fn chain_problem(n: usize) -> (Schema, Vec<Nfd>) {
    let fields = (0..n)
        .map(|i| format!("a{i}: int"))
        .collect::<Vec<_>>()
        .join(", ");
    let schema = Schema::parse(&format!("R : {{<{fields}>}};")).unwrap();
    let text = (0..n - 1)
        .map(|i| format!("R:[a{i} -> a{}];", i + 1))
        .collect::<String>();
    let sigma = nfd::core::nfd::parse_set(&schema, &text).unwrap();
    (schema, sigma)
}

#[test]
fn hammering_one_session_from_many_threads_is_deterministic() {
    for seed in 0..6u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0C0);
        let sigma = random_sigma(&mut rng, &schema, 6);
        let goals: Vec<Nfd> = (0..40)
            .filter_map(|_| random_nfd(&mut rng, &schema))
            .take(16)
            .collect();
        let session = Session::new(&schema, &sigma).expect("generated Σ compiles");
        let budget = Budget::standard();

        let reference: Vec<Decision> = goals
            .iter()
            .map(|g| session.implies_with(g, &budget).expect("decides"))
            .collect();

        // Each worker walks the same goal set in its own shuffled order;
        // every observation must match the sequential reference.
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8u64)
                .map(|worker| {
                    let session = &session;
                    let goals = &goals;
                    let budget = &budget;
                    scope.spawn(move || {
                        let mut seen: Vec<(usize, Decision)> = Vec::new();
                        for i in shuffled_indices(goals.len(), seed * 31 + worker) {
                            let d = session.implies_with(&goals[i], budget).expect("decides");
                            seen.push((i, d));
                        }
                        seen
                    })
                })
                .collect();
            for h in handles {
                for (i, d) in h.join().expect("worker completes") {
                    assert_eq!(
                        d, reference[i],
                        "seed {seed}: goal {i} answered differently under contention"
                    );
                }
            }
        });
    }
}

#[test]
fn concurrent_batches_and_key_searches_agree() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = [
        "Course:[time, students:sid -> books]",
        "Course:[time -> cnum]",
        "Course:[cnum -> books]",
        "Course:[books:isbn -> books:title]",
    ]
    .iter()
    .map(|t| Nfd::parse(&schema, t).unwrap())
    .collect();
    let budget = Budget::standard();
    let batch_ref = session.implies_batch(&goals, &budget, 1).unwrap();
    let keys_ref = session.candidate_keys(Label::new("Course"), 3).unwrap();

    // Batches and key searches racing on one session, at mixed thread
    // counts, all reproduce the sequential answers.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6usize)
            .map(|worker| {
                let session = &session;
                let goals = &goals;
                let budget = &budget;
                scope.spawn(move || {
                    let threads = [1, 2, 8][worker % 3];
                    let batch = session.implies_batch(goals, budget, threads).unwrap();
                    let keys = session
                        .candidate_keys_threaded(Label::new("Course"), 3, threads)
                        .unwrap();
                    (batch, keys)
                })
            })
            .collect();
        for h in handles {
            let (batch, keys) = h.join().expect("worker completes");
            assert_eq!(batch, batch_ref);
            assert_eq!(keys, keys_ref);
        }
    });
}

#[test]
fn first_exhaustion_stops_the_whole_pool_promptly() {
    // Reference: the full saturation of the chain is the work a runaway
    // batch would do. A budget that exhausts almost immediately must end
    // the whole batch in a small fraction of that time: the first
    // exhaustion cancels the pool, and every budgeted loop polls the
    // token at least once per ~4096 work units.
    let (schema, sigma) = chain_problem(64);
    let full = Instant::now();
    let session = Session::new(&schema, &sigma).unwrap();
    let full_time = full.elapsed();

    let goals: Vec<Nfd> = (0..12)
        .map(|i| Nfd::parse(&schema, &format!("R:[a{i} -> a{}]", i + 40)).unwrap())
        .collect();
    // A cap of 100 starves all three deciders on this chain (saturation
    // needs 2016 pool entries, the chase >100 assignments, logic-eval the
    // same pool); 500 would let the chase answer.
    let starved = Budget::limited(100);
    let t = Instant::now();
    let batch = session.implies_batch(&goals, &starved, 8).unwrap();
    let starved_time = t.elapsed();

    assert_eq!(batch.first_exhausted, Some(0), "goal 0 starves first");
    assert!(
        batch
            .decisions
            .iter()
            .all(|d| matches!(d, Ok(d) if d.verdict.is_exhausted())),
        "every goal is honestly exhausted, never mis-answered"
    );
    // Generous 2× headroom: the starved batch does a few thousand work
    // units against the chain's ~170k-pair full saturation.
    assert!(
        starved_time < full_time,
        "a starved batch ({starved_time:?}) must not redo the full \
         saturation ({full_time:?})"
    );
}

#[test]
fn external_cancellation_preempts_a_heavy_batch() {
    // Calibrate the workload so the uncancelled batch would take at least
    // ~400ms on this machine, then cancel early and require the batch to
    // return well before the full work completes. The ladder reaches well
    // past n=200 because the indexed saturation kernel builds chains far
    // faster than the old all-pairs scan did.
    let mut calibrated = None;
    for n in [100usize, 140, 200, 280, 400, 560, 800] {
        let (schema, sigma) = chain_problem(n);
        let t = Instant::now();
        let session = Session::new(&schema, &sigma).unwrap();
        let build = t.elapsed();
        if build >= Duration::from_millis(400) {
            calibrated = Some((schema, sigma, build));
            break;
        }
        drop(session);
    }
    let Some((schema, sigma, full_time)) = calibrated else {
        panic!("even the largest chain saturates in <400ms; grow the calibration sizes");
    };
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = (0..8)
        .map(|i| Nfd::parse(&schema, &format!("R:[a{i} -> a{}]", i + 50)).unwrap())
        .collect();

    let token = CancelToken::new();
    let budget = Budget::standard().with_cancel(token.clone());
    let delay = full_time / 10;
    let t = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(delay);
            token.cancel();
        });
        // The batch re-saturates under the worker budget (≈ full_time of
        // work); the cancel lands mid-build and must preempt it.
        let batch = session.implies_batch(&goals, &budget, 8).unwrap();
        let elapsed = t.elapsed();
        assert!(
            batch
                .decisions
                .iter()
                .all(|d| matches!(d, Ok(d) if d.verdict.is_exhausted())),
            "a cancelled batch reports exhaustion, never a made-up verdict"
        );
        assert_eq!(batch.first_exhausted, Some(0));
        assert!(
            elapsed < full_time / 2 + delay,
            "cancellation after {delay:?} must preempt the ≈{full_time:?} build, \
             took {elapsed:?}"
        );
    });
}

#[test]
fn already_cancelled_budget_refuses_all_work_consistently() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = ["Course:[cnum -> time]", "Course:[time -> cnum]"]
        .iter()
        .map(|t| Nfd::parse(&schema, t).unwrap())
        .collect();
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::standard().with_cancel(token);
    let reference = session.implies_batch(&goals, &budget, 1).unwrap();
    assert!(reference
        .decisions
        .iter()
        .all(|d| matches!(d, Ok(d) if d.verdict.is_exhausted())));
    for threads in [2usize, 8] {
        let batch = session.implies_batch(&goals, &budget, threads).unwrap();
        assert_eq!(batch, reference, "threads = {threads}");
    }
}

/// Graceful degradation: one worker panicking mid-`implies_batch`
/// (injected through the `session::batch_goal` failpoint) must be
/// contained to its own goal — surfaced as `Err(Internal)` in that slot —
/// while every sibling still matches the fault-free reference, and the
/// same `Session` serves the next batch as if nothing happened.
///
/// Runs only under `--features failpoints`; the registry is
/// process-global, so CI runs this binary with `--test-threads=1` when
/// the feature is on (other tests here issue batches of their own and
/// would otherwise eat the count-limited panic).
#[cfg(feature = "failpoints")]
#[test]
fn one_panicking_worker_degrades_only_its_own_goal() {
    use nfd::faults;

    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = [
        "Course:[time, students:sid -> books]",
        "Course:[cnum -> time]",
        "Course:[time -> cnum]",
        "Course:[books:isbn -> books:title]",
        "Course:[books:title -> books:isbn]",
        "Course:[cnum -> students]",
    ]
    .iter()
    .map(|t| Nfd::parse(&schema, t).unwrap())
    .collect();
    let budget = Budget::standard();
    let reference = session.implies_batch(&goals, &budget, 4).unwrap();
    assert!(reference.decisions.iter().all(|d| d.is_ok()));

    // Exactly one firing: whichever worker reaches the site first panics;
    // its siblings must not notice.
    faults::configure_limited("session::batch_goal", 1, faults::FaultAction::Panic);
    let degraded = session.implies_batch(&goals, &budget, 4).unwrap();
    faults::reset();

    let failed: Vec<usize> = degraded
        .decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.is_err().then_some(i))
        .collect();
    assert_eq!(failed.len(), 1, "exactly one goal fails: {failed:?}");
    assert_eq!(degraded.failed_count(), 1);
    match &degraded.decisions[failed[0]] {
        Err(CoreError::Internal(msg)) => {
            assert!(
                msg.contains("panicked"),
                "internal error names the panic: {msg}"
            )
        }
        other => panic!("expected Err(Internal), got {other:?}"),
    }
    for (i, (got, want)) in degraded
        .decisions
        .iter()
        .zip(&reference.decisions)
        .enumerate()
    {
        if i != failed[0] {
            assert_eq!(got, want, "sibling goal {i} deviates after a worker panic");
        }
    }

    // The session is not poisoned: the next batch reproduces the
    // reference exactly.
    let after = session.implies_batch(&goals, &budget, 4).unwrap();
    assert_eq!(after, reference, "session unusable after a contained panic");
}
