//! Source-level guard against reintroducing panicking sites.
//!
//! PR "resource-governed execution" converted every `unwrap`/`expect`/
//! `panic!`/`unreachable!` reachable from the public API of the hot
//! decision-procedure modules into propagated `CoreError`/`ChaseError`
//! values. This test greps those sources (minus their `#[cfg(test)]`
//! modules, where panicking asserts are idiomatic) and fails if new
//! panicking sites appear, so the panic-free boundary cannot rot
//! silently.
//!
//! If you add a site that is *provably* unreachable, prefer returning
//! `CoreError::Internal`-style errors anyway — and if you must panic,
//! raise the budget here with a comment justifying it.

use std::path::Path;

/// (file, allowed panicking sites outside `#[cfg(test)]`).
const BUDGETS: &[(&str, usize)] = &[
    ("crates/core/src/engine.rs", 0),
    ("crates/core/src/kernel.rs", 0),
    ("crates/core/src/naive.rs", 0),
    ("crates/core/src/satisfy.rs", 0),
    ("crates/core/src/analysis.rs", 0),
    ("crates/core/src/dense.rs", 0),
    ("crates/core/src/delta.rs", 0),
    ("crates/core/src/select.rs", 0),
    ("crates/par/src/lib.rs", 0),
    ("crates/chase/src/tableau.rs", 0),
    ("crates/logic/src/eval.rs", 0),
    ("crates/model/src/parse.rs", 0),
    // One deliberate site: `trigger`'s `FaultAction::Panic` arm — the
    // whole point of that action is to panic so the chaos harness can
    // prove the `catch_unwind` boundaries contain it. The module is
    // compiled only under the (never-default) `failpoints` feature.
    ("crates/faults/src/lib.rs", 1),
    // The serve layer promises crash containment; a panicking site here
    // would be a hole in the very boundary it exists to enforce.
    ("crates/serve/src/lib.rs", 0),
    ("crates/serve/src/proto.rs", 0),
    ("crates/serve/src/gate.rs", 0),
    ("crates/serve/src/server.rs", 0),
    ("src/serve.rs", 0),
    // The snapshot decoder's whole contract is "malformed bytes become
    // typed errors, never panics" — zero tolerance, and the same for
    // the freeze/thaw conversion layer in the facade.
    ("crates/snap/src/lib.rs", 0),
    ("src/snapshot.rs", 0),
];

/// Matches the panicking constructs we guard against. `.unwrap()` and
/// `.expect("…")`/`.expect(format!` only — `unwrap_or`/`expect_err` etc.
/// do not panic, and `Parser::expect(TokenKind…)` in the model crate is a
/// Result-returning method, so the `.expect(` needle requires a message
/// argument to avoid flagging it.
fn panicking_sites(code: &str) -> Vec<(usize, String)> {
    let needles = [
        ".unwrap()",
        ".expect(\"",
        ".expect(format!",
        "panic!(",
        "unreachable!(",
        "unreachable!()",
    ];
    code.lines()
        .enumerate()
        .filter(|(_, l)| {
            let t = l.trim_start();
            !t.starts_with("//") && needles.iter().any(|n| l.contains(n))
        })
        .map(|(i, l)| (i + 1, l.trim().to_string()))
        .collect()
}

/// Drops everything from the first test-module attribute on — plain
/// `#[cfg(test)]` or a compound `#[cfg(all(test, …))]` (used by the
/// feature-gated faults crate). Test modules sit at the end of each file
/// in this repository, so a simple prefix cut is exact; the assertion
/// below keeps that assumption honest.
fn non_test_prefix(code: &str) -> &str {
    let markers = ["#[cfg(test)]", "#[cfg(all(test"];
    match markers.iter().filter_map(|m| code.find(m)).min() {
        Some(pos) => {
            let rest = &code[pos..];
            assert!(
                rest.contains("mod tests"),
                "test cfg not introducing a test module — update the guard"
            );
            &code[..pos]
        }
        None => code,
    }
}

#[test]
fn decision_procedure_sources_stay_panic_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for (file, budget) in BUDGETS {
        let path = root.join(file);
        let code = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let sites = panicking_sites(non_test_prefix(&code));
        assert!(
            sites.len() <= *budget,
            "{file} has {} panicking site(s), budget is {budget}:\n{}",
            sites.len(),
            sites
                .iter()
                .map(|(line, text)| format!("  {file}:{line}: {text}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn guard_actually_detects_sites() {
    // Self-test: the matcher must flag real sites and pass over lookalikes.
    let flagged = panicking_sites(
        "let x = y.unwrap();\nlet z = w.expect(\"msg\");\npanic!(\"boom\");\nunreachable!()",
    );
    assert_eq!(flagged.len(), 4);
    let clean = panicking_sites(
        "let x = y.unwrap_or(0);\nlet z = w.unwrap_or_else(|| 1);\n// .unwrap() in a comment",
    );
    assert!(clean.is_empty(), "{clean:?}");
}

/// The `failpoints` feature must never be on by default: release builds
/// carry no registry and no injected-fault code paths. This greps every
/// workspace manifest for a `default = […]` feature list naming it, and
/// pins the one legitimate forwarding arm (the `nfd` facade).
#[test]
fn failpoints_is_never_a_default_feature() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    for dir in ["crates", "compat"] {
        for entry in std::fs::read_dir(root.join(dir)).unwrap() {
            let manifest = entry.unwrap().path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    assert!(manifests.len() > 10, "workspace scan looks broken");

    let mut forwarding_arms = 0;
    for manifest in manifests {
        let toml = std::fs::read_to_string(&manifest).unwrap();
        for line in toml.lines() {
            let line = line.trim();
            if line.starts_with('#') {
                continue;
            }
            if line.starts_with("default") && line.contains('=') {
                assert!(
                    !line.contains("failpoints"),
                    "{}: `failpoints` must never be a default feature: {line}",
                    manifest.display()
                );
            }
            if line.starts_with("failpoints") && line.contains("nfd-faults/failpoints") {
                forwarding_arms += 1;
            }
        }
    }
    assert_eq!(
        forwarding_arms, 1,
        "exactly one manifest (the facade) forwards the feature"
    );
}
