//! E1–E3: every concrete example of Sections 1–2 of the paper, end to end.

mod common;

use common::{course_schema, course_sigma};
use nfd::core::engine::Engine;
use nfd::core::{check, satisfy, Nfd};
use nfd::model::{render, Instance, Label, Schema};

/// A Course instance satisfying all of Examples 2.1–2.5.
fn good_course(schema: &Schema) -> Instance {
    Instance::parse(
        schema,
        r#"Course = {
            <cnum: "cis550", time: 10,
             students: {<sid: 1001, age: 20, grade: "A">,
                        <sid: 2002, age: 22, grade: "B">},
             books: {<isbn: "0-13", title: "DB Systems">}>,
            <cnum: "cis500", time: 12,
             students: {<sid: 3003, age: 23, grade: "C">},
             books: {<isbn: "0-13", title: "DB Systems">,
                     <isbn: "0-14", title: "Found of DB">}> };"#,
    )
    .unwrap()
}

/// E1: the five constraints hold on a conforming instance…
#[test]
fn course_constraints_hold() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let inst = good_course(&schema);
    for nfd in &sigma {
        assert!(
            check(&schema, &inst, nfd).unwrap().holds,
            "{nfd} must hold on the conforming instance"
        );
    }
}

/// …and each constraint has an instance that violates precisely it.
#[test]
fn each_constraint_can_be_violated() {
    let schema = course_schema();
    let violators = [
        // cnum → time: same course number, two times.
        (
            "Course:[cnum -> time]",
            r#"Course = {
                <cnum: "x", time: 1, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "i", title: "t">}>,
                <cnum: "x", time: 2, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "i", title: "t">}> };"#,
        ),
        // isbn → title inconsistency across courses.
        (
            "Course:[books:isbn -> books:title]",
            r#"Course = {
                <cnum: "x", time: 1, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "i", title: "t1">}>,
                <cnum: "y", time: 2, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "i", title: "t2">}> };"#,
        ),
        // A student with two grades in one course.
        (
            "Course:students:[sid -> grade]",
            r#"Course = {
                <cnum: "x", time: 1,
                 students: {<sid: 1, age: 1, grade: "A">, <sid: 1, age: 1, grade: "B">},
                 books: {<isbn: "i", title: "t">}> };"#,
        ),
        // Inconsistent ages for one sid across courses.
        (
            "Course:[students:sid -> students:age]",
            r#"Course = {
                <cnum: "x", time: 1, students: {<sid: 1, age: 20, grade: "A">},
                 books: {<isbn: "i", title: "t">}>,
                <cnum: "y", time: 2, students: {<sid: 1, age: 30, grade: "A">},
                 books: {<isbn: "i", title: "t">}> };"#,
        ),
        // One student in two courses at the same time.
        (
            "Course:[time, students:sid -> cnum]",
            r#"Course = {
                <cnum: "x", time: 1, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "i", title: "t">}>,
                <cnum: "y", time: 1, students: {<sid: 1, age: 1, grade: "A">},
                 books: {<isbn: "i", title: "t">}> };"#,
        ),
    ];
    for (nfd_text, inst_text) in violators {
        let nfd = Nfd::parse(&schema, nfd_text).unwrap();
        let inst = Instance::parse(&schema, inst_text).unwrap();
        let report = check(&schema, &inst, &nfd).unwrap();
        assert!(!report.holds, "{nfd_text} should be violated");
        assert!(report.violation.is_some());
    }
}

/// E2: the exact Section 2 instance parses, validates and satisfies the
/// local grade dependency and the global age dependency.
#[test]
fn section_2_instance() {
    let schema = Schema::parse(
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, grade: string>}> };",
    )
    .unwrap();
    let inst = Instance::parse(
        &schema,
        r#"Course = { <cnum: "cis550", time: 10,
                       students: {<sid: 1001, grade: "A">,
                                  <sid: 2002, grade: "B">}>,
                      <cnum: "cis500", time: 12,
                       students: {<sid: 1001, grade: "A">}> };"#,
    )
    .unwrap();
    assert!(!inst.contains_empty_set());
    let local = Nfd::parse(&schema, "Course:students:[sid -> grade]").unwrap();
    assert!(check(&schema, &inst, &local).unwrap().holds);
    // This instance also happens to be globally consistent on grades.
    let global = Nfd::parse(&schema, "Course:[students:sid -> students:grade]").unwrap();
    assert!(check(&schema, &inst, &global).unwrap().holds);
    // cnum is a key here.
    let key = Nfd::parse(&schema, "Course:[cnum -> students]").unwrap();
    assert!(check(&schema, &inst, &key).unwrap().holds);
}

/// E3: Figure 1 — the instance violates R:[B:C → E:F], and the rendered
/// table contains the paper's data.
#[test]
fn figure_1() {
    let schema =
        Schema::parse("R : { <A: int, B: {<C: int, D: int>}, E: {<F: int, G: int>}> };").unwrap();
    let inst = Instance::parse(
        &schema,
        "R = { <A: 1, B: {<C: 1, D: 3>}, E: {<F: 5, G: 6>, <F: 5, G: 7>}>,
               <A: 2, B: {<C: 2, D: 2>, <C: 1, D: 3>}, E: {<F: 3, G: 4>, <F: 4, G: 4>}> };",
    )
    .unwrap();
    let nfd = Nfd::parse(&schema, "R:[B:C -> E:F]").unwrap();
    let report = check(&schema, &inst, &nfd).unwrap();
    assert!(!report.holds, "Figure 1's instance violates the NFD");

    // Both failure modes described in the paper exist. (a) The second
    // tuple alone assigns two F values to C = 1:
    let second_alone = Instance::parse(
        &schema,
        "R = { <A: 2, B: {<C: 2, D: 2>, <C: 1, D: 3>}, E: {<F: 3, G: 4>, <F: 4, G: 4>}> };",
    )
    .unwrap();
    assert!(!check(&schema, &second_alone, &nfd).unwrap().holds);
    // (b) C = 1 appears in both tuples with different F values:
    let cross = Instance::parse(
        &schema,
        "R = { <A: 1, B: {<C: 1, D: 3>}, E: {<F: 5, G: 6>, <F: 5, G: 7>}>,
               <A: 2, B: {<C: 1, D: 3>}, E: {<F: 3, G: 3>}> };",
    )
    .unwrap();
    assert!(!check(&schema, &cross, &nfd).unwrap().holds);

    // The nested renderer reproduces the table's content.
    let table = render::render_relation(&schema, &inst, Label::new("R"));
    for needle in [
        "| C | D |",
        "| F | G |",
        "| 5 | 6 |",
        "| 5 | 7 |",
        "| 3 | 4 |",
    ] {
        assert!(table.contains(needle), "table missing {needle}:\n{table}");
    }
}

/// E1 (inference): the motivating question of the introduction — in a
/// database satisfying the five constraints, a (sid, time) pair determines
/// the set of books.
#[test]
fn intro_inference_books() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let engine = Engine::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
    assert!(engine.implies(&goal).unwrap());

    // The engine's answer is semantically honest: no instance that
    // satisfies Σ may violate the goal. Exercise that with the violators
    // of the other test: every instance violating the goal must violate
    // some σ ∈ Σ.
    let bad = Instance::parse(
        &schema,
        r#"Course = {
            <cnum: "x", time: 1, students: {<sid: 1, age: 1, grade: "A">},
             books: {<isbn: "i", title: "t">}>,
            <cnum: "y", time: 1, students: {<sid: 1, age: 1, grade: "A">},
             books: {<isbn: "j", title: "u">}> };"#,
    )
    .unwrap();
    assert!(!check(&schema, &bad, &goal).unwrap().holds);
    assert!(!satisfy::satisfies_all(&schema, &bad, &sigma).unwrap());
}

/// Section 2.1's disjointness observation: Courses:[scourses:cnum →
/// school] forces schools not to share course numbers.
#[test]
fn schools_do_not_share_course_numbers() {
    let schema =
        Schema::parse("Courses : { <school: string, scourses: {<cnum: string, time: int>}> };")
            .unwrap();
    let nfd = Nfd::parse(&schema, "Courses:[scourses:cnum -> school]").unwrap();
    let sharing = Instance::parse(
        &schema,
        r#"Courses = {
            <school: "eng", scourses: {<cnum: "101", time: 9>}>,
            <school: "law", scourses: {<cnum: "101", time: 10>}> };"#,
    )
    .unwrap();
    assert!(!check(&schema, &sharing, &nfd).unwrap().holds);
    let disjoint = Instance::parse(
        &schema,
        r#"Courses = {
            <school: "eng", scourses: {<cnum: "101", time: 9>}>,
            <school: "law", scourses: {<cnum: "201", time: 10>}> };"#,
    )
    .unwrap();
    assert!(check(&schema, &disjoint, &nfd).unwrap().holds);
}
