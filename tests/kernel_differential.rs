//! The indexed semi-naive kernel against the retained naive oracle.
//!
//! `nfd::core::naive` preserves the pre-index engine verbatim: full-pool
//! subsumption scans, all-pairs saturation, pass-structured chaining.
//! The indexed engine (RHS buckets, LHS-occurrence worklist, counting
//! chain) is an optimization and must never be a semantic change, so
//! this suite demands *bit-identical* observables on seeded random
//! schemas and the paper's own examples:
//!
//! * pool dumps — every entry's LHS/RHS, provenance and subsumption flag
//!   in pool order (identical pools ⇒ identical proof replays);
//! * chain dumps — verdict, closure and the `fired` provenance map per
//!   goal (identical maps ⇒ identical reconstructed proofs);
//! * Appendix-A closures, candidate keys at every thread count, and
//!   proofs that verify on the indexed engine;
//! * all of the above under the pessimistic empty-set policy too, so the
//!   counting kernel's lazy `need_x` gate is exercised;
//! * the tiered router (`--engine` / `TierPreference`): every forced tier
//!   and the auto cost model produce bit-identical verdicts, closures and
//!   candidate keys, including across the promotion boundary where auto
//!   switches a hot relation to the dense closure matrix.

mod common;

use common::*;
use nfd::core::analysis;
use nfd::core::engine::{Engine, Prov};
use nfd::core::naive::NaiveEngine;
use nfd::core::proof;
use nfd::core::{EmptySetPolicy, Nfd, Tier, TierPreference};
use nfd::govern::{Budget, Verdict};
use nfd::path::RootedPath;
use nfd::session::Session;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeds for the broad sweep. Each seed yields a distinct single-relation
/// schema (depth ≤ 2, 2–4 fields per record) and Σ.
const SWEEP_SEEDS: std::ops::Range<u64> = 0..32;

/// Random goals compared per seed.
const GOALS_PER_SEED: usize = 24;

/// Pools, verdicts, closures and fired maps agree on random schemas under
/// the Forbidden policy (Theorem 3.1's regime).
#[test]
fn random_sweep_matches_naive_oracle() {
    for seed in SWEEP_SEEDS {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) | 1);
        let sigma = random_sigma(&mut rng, &schema, 6);
        let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);

        // Saturated pools are identical entry by entry: same order, same
        // provenance, same subsumption flags.
        assert_eq!(
            naive.pool_dump(),
            engine.pool_dump(),
            "pool dump diverged at seed {seed}"
        );

        for _ in 0..GOALS_PER_SEED {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            assert_eq!(
                naive.implies(&goal).unwrap(),
                engine.implies(&goal).unwrap(),
                "verdict diverged at seed {seed} on `{goal}`"
            );
            // The chain dump carries the closure *and* the fired map the
            // proof reconstructor walks — identical dumps mean the
            // counting kernel replays the naive pass scan exactly.
            assert_eq!(
                naive.chain_dump(&goal).unwrap(),
                engine.chain_dump(&goal).unwrap(),
                "chain dump diverged at seed {seed} on `{goal}`"
            );
            // Appendix-A closure of the goal's own base/LHS.
            assert_eq!(
                naive.closure(&goal.base, goal.lhs()).unwrap(),
                engine.closure(&goal.base, goal.lhs()).unwrap(),
                "closure diverged at seed {seed} on `{goal}`"
            );
        }

        // Closures from every base candidate with an empty LHS (the pure
        // prefix-extension view).
        for base in base_candidates(&schema, only_relation(&schema)) {
            assert_eq!(
                naive.closure(&base, &[]).unwrap(),
                engine.closure(&base, &[]).unwrap(),
                "empty-LHS closure diverged at seed {seed} on `{base}`"
            );
        }
    }
}

/// The same sweep under `EmptySetPolicy::pessimistic()`, which compiles
/// non-trivial `need_x` gates — the lazy gate check in the counting
/// kernel must fire at exactly the moments the naive pass scan checks it.
#[test]
fn random_sweep_matches_naive_oracle_pessimistic() {
    for seed in SWEEP_SEEDS {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x1234_5677) | 1);
        let sigma = random_sigma(&mut rng, &schema, 6);
        let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::pessimistic());

        assert_eq!(
            naive.pool_dump(),
            engine.pool_dump(),
            "pessimistic pool dump diverged at seed {seed}"
        );

        for _ in 0..GOALS_PER_SEED {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            assert_eq!(
                naive.chain_dump(&goal).unwrap(),
                engine.chain_dump(&goal).unwrap(),
                "pessimistic chain dump diverged at seed {seed} on `{goal}`"
            );
        }
    }
}

/// Candidate keys: the naive sequential sweep against the indexed engine
/// at thread counts 1, 2 and 8, and against the session front end (which
/// adds the keys memo on top).
#[test]
fn candidate_keys_match_naive_at_every_thread_count() {
    for seed in 0..16u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5151_5151) | 1);
        let sigma = random_sigma(&mut rng, &schema, 6);
        let relation = only_relation(&schema);
        let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);

        let expected = naive.candidate_keys(relation, 3).unwrap();
        for threads in [1usize, 2, 8] {
            assert_eq!(
                expected,
                analysis::candidate_keys_threaded(&engine, relation, 3, threads).unwrap(),
                "candidate keys diverged at seed {seed}, {threads} threads"
            );
        }

        let session = Session::new(&schema, &sigma).unwrap();
        for threads in [1usize, 2, 8] {
            // The second and third calls are keys-memo hits; the memo must
            // hand back exactly the sweep's answer.
            assert_eq!(
                expected,
                session
                    .candidate_keys_threaded(relation, 3, threads)
                    .unwrap(),
                "session candidate keys diverged at seed {seed}, {threads} threads"
            );
        }
        assert!(session.keys_memo_hits() >= 2);
    }
}

/// Proof reconstruction stays well-founded over the indexed pools: every
/// implied random goal yields a certificate that the checker accepts.
#[test]
fn proofs_reconstruct_and_verify_on_indexed_pools() {
    let mut proved = 0usize;
    for seed in SWEEP_SEEDS {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x0bad_cafd) | 1);
        let sigma = random_sigma(&mut rng, &schema, 6);
        let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);

        for _ in 0..GOALS_PER_SEED {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            let pf = proof::prove(&engine, &goal).unwrap();
            assert_eq!(
                naive.implies(&goal).unwrap(),
                pf.is_some(),
                "prove/implies disagreed at seed {seed} on `{goal}`"
            );
            if let Some(pf) = pf {
                proof::verify(&engine, &pf)
                    .unwrap_or_else(|e| panic!("proof rejected at seed {seed} on `{goal}`: {e}"));
                proved += 1;
            }
        }
    }
    // The sweep must actually exercise the prover, not vacuously pass.
    assert!(proved > 50, "only {proved} goals were provable");
}

/// Session batch verdicts agree with the naive oracle at every thread
/// count (the batch path rebuilds query engines that share the session's
/// closure cache — cache hits must never change a verdict).
#[test]
fn session_batches_match_naive_at_every_thread_count() {
    for seed in 0..12u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x00c0_ffed) | 1);
        let sigma = random_sigma(&mut rng, &schema, 6);
        let naive = NaiveEngine::new(&schema, &sigma).unwrap();
        let session = Session::new(&schema, &sigma).unwrap();

        let goals: Vec<Nfd> = (0..GOALS_PER_SEED)
            .filter_map(|_| random_nfd(&mut rng, &schema))
            .collect();
        let expected: Vec<bool> = goals.iter().map(|g| naive.implies(g).unwrap()).collect();

        for threads in [1usize, 2, 8] {
            let batch = session
                .implies_batch(&goals, &Budget::standard(), threads)
                .unwrap();
            let got: Vec<bool> = batch
                .decisions
                .iter()
                .map(|d| match d.as_ref().unwrap().verdict {
                    Verdict::Implied => true,
                    Verdict::NotImplied => false,
                    ref v => panic!("unexpected verdict {v:?}"),
                })
                .collect();
            assert_eq!(
                expected, got,
                "batch verdicts diverged at seed {seed}, {threads} threads"
            );
        }
    }
}

/// The paper's running Course example, end to end: pools, every
/// single-attribute implication, and the E5 proof.
#[test]
fn course_example_matches_naive_end_to_end() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);

    assert_eq!(naive.pool_dump(), engine.pool_dump());

    let relation = only_relation(&schema);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..64 {
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        assert_eq!(
            naive.chain_dump(&goal).unwrap(),
            engine.chain_dump(&goal).unwrap(),
            "course chain dump diverged on `{goal}`"
        );
    }

    assert_eq!(
        naive.candidate_keys(relation, 3).unwrap(),
        analysis::candidate_keys_threaded(&engine, relation, 3, 4).unwrap()
    );

    // The Section 1 inference and its certificate.
    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
    assert!(naive.implies(&goal).unwrap());
    let pf = proof::prove(&engine, &goal).unwrap().expect("E5 proof");
    proof::verify(&engine, &pf).unwrap();
}

/// The singleton rule's conclusions are pinned on the paper's examples:
/// the Section 2.1 empty-or-singleton inference still fires (and its
/// provenance survives in the indexed pool), the Appendix A.1/A.2
/// closures are unchanged, and `forced_singletons` reports exactly the
/// paths it always did.
#[test]
fn singleton_conclusions_pinned_on_appendix_a_examples() {
    // Section 2.1: R : { <A: {<B, C>}, D> } with D → A:B and D → A:C
    // forces A to be empty-or-singleton, hence D → A.
    let schema = nfd::model::Schema::parse("R : { <A: {<B: int, C: int>}, D: int> };").unwrap();
    let sigma = vec![
        Nfd::parse(&schema, "R:[D -> A:B]").unwrap(),
        Nfd::parse(&schema, "R:[D -> A:C]").unwrap(),
    ];
    let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);
    let goal = Nfd::parse(&schema, "R:[D -> A]").unwrap();
    assert!(engine.implies(&goal).unwrap());
    assert_eq!(naive.pool_dump(), engine.pool_dump());
    // The singleton introduction is present in the indexed pool with its
    // provenance intact.
    let dump = engine.pool_dump();
    assert!(
        dump.iter().any(|(_, entries)| entries
            .iter()
            .any(|e| matches!(e.prov, Prov::Singleton { .. }))),
        "no singleton-introduced entry in the saturated pool"
    );
    assert_eq!(
        analysis::forced_singletons(&engine).unwrap(),
        vec![RootedPath::parse("R:A").unwrap()]
    );

    // Dropping one premise withdraws the conclusion.
    let partial = vec![Nfd::parse(&schema, "R:[D -> A:B]").unwrap()];
    let engine = Engine::new(&schema, &partial).unwrap();
    assert!(!engine.implies(&goal).unwrap());
    assert!(analysis::forced_singletons(&engine).unwrap().is_empty());

    // Example A.1: closure pinned against the oracle and by value.
    let schema =
        nfd::model::Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };")
            .unwrap();
    let sigma = vec![
        Nfd::parse(&schema, "R:[A:B:C, D -> A:E:F]").unwrap(),
        Nfd::parse(&schema, "R:A:[B -> E:G]").unwrap(),
    ];
    let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);
    assert_eq!(naive.pool_dump(), engine.pool_dump());
    let base = RootedPath::parse("R:A").unwrap();
    let lhs = vec![nfd::path::Path::parse("B").unwrap()];
    assert_eq!(
        naive.closure(&base, &lhs).unwrap(),
        engine.closure(&base, &lhs).unwrap()
    );

    // Example A.2's shape.
    let schema =
        nfd::model::Schema::parse("R : { <A: {<B: {<C: int, D: int, E: {<F: int>}>}, H: int>}> };")
            .unwrap();
    let sigma = vec![
        Nfd::parse(&schema, "R:[A:B:C -> A:B]").unwrap(),
        Nfd::parse(&schema, "R:[A:B:C -> A:B:E:F]").unwrap(),
        Nfd::parse(&schema, "R:[A:H -> A:B:D]").unwrap(),
    ];
    let (naive, engine) = build_pair(&schema, &sigma, EmptySetPolicy::Forbidden);
    assert_eq!(naive.pool_dump(), engine.pool_dump());
    let base = RootedPath::relation_only(only_relation(&schema));
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..16 {
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        assert_eq!(
            naive.chain_dump(&goal).unwrap(),
            engine.chain_dump(&goal).unwrap()
        );
    }
    assert_eq!(
        naive.closure(&base, &[]).unwrap(),
        engine.closure(&base, &[]).unwrap()
    );
}

/// Every engine tier against the naive oracle: forced naive-scan, forced
/// indexed, forced dense and the auto router all return bit-identical
/// verdicts, closures and candidate keys (at thread counts 1/2/8), under
/// both empty-set policies. The saturated pool — the provenance store
/// proofs replay against — is shared by all tiers, so pool equality here
/// extends the bit-identical guarantee to certificates.
#[test]
fn tier_differential_sweep() {
    let prefs = [
        TierPreference::Auto,
        TierPreference::Fixed(Tier::Naive),
        TierPreference::Fixed(Tier::Indexed),
        TierPreference::Fixed(Tier::Dense),
    ];
    for seed in 0..12u64 {
        for policy in [EmptySetPolicy::Forbidden, EmptySetPolicy::pessimistic()] {
            let schema = random_schema(seed, SchemaShape::default());
            // One rng per (seed, policy) with a fixed constant: both
            // policies see the same Σ and the same goal stream.
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x7157_3157) | 1);
            let sigma = random_sigma(&mut rng, &schema, 6);
            let relation = only_relation(&schema);
            let naive = NaiveEngine::with_policy_budget(
                &schema,
                &sigma,
                policy.clone(),
                Budget::standard(),
            )
            .unwrap();

            let sessions: Vec<(TierPreference, Session)> = prefs
                .iter()
                .map(|p| {
                    let s = Session::with_tiers(
                        &schema,
                        &sigma,
                        policy.clone(),
                        Budget::standard(),
                        *p,
                    )
                    .unwrap();
                    (*p, s)
                })
                .collect();

            for (pref, s) in &sessions {
                assert_eq!(
                    naive.pool_dump(),
                    s.engine().pool_dump(),
                    "pool dump diverged at seed {seed} under {pref}"
                );
            }

            let goals: Vec<Nfd> = (0..GOALS_PER_SEED)
                .filter_map(|_| random_nfd(&mut rng, &schema))
                .collect();
            for goal in &goals {
                let expected = naive.implies(goal).unwrap();
                let want_closure = naive.closure(&goal.base, goal.lhs()).unwrap();
                for (pref, s) in &sessions {
                    let d = s.implies_with(goal, &Budget::standard()).unwrap();
                    assert_eq!(
                        expected,
                        verdict_bool(&d.verdict),
                        "verdict diverged at seed {seed} under {pref} on `{goal}`"
                    );
                    // A forced tier must be the tier that actually ran
                    // (None means a pre-engine decider answered, e.g.
                    // reflexivity — no chain was computed at all).
                    if let (TierPreference::Fixed(t), Some(ran)) = (pref, d.tier) {
                        assert_eq!(
                            *t, ran,
                            "forced {pref} but tier {ran} ran at seed {seed} on `{goal}`"
                        );
                    }
                    let (got_closure, _) = s.closure_traced(&goal.base, goal.lhs()).unwrap();
                    assert_eq!(
                        want_closure, got_closure,
                        "closure diverged at seed {seed} under {pref} on `{goal}`"
                    );
                }
            }

            // Candidate keys route the analysis sweep through the same
            // tier selection; every tier, every thread count.
            let expected_keys = naive.candidate_keys(relation, 3).unwrap();
            for (pref, s) in &sessions {
                for threads in [1usize, 2, 8] {
                    assert_eq!(
                        expected_keys,
                        s.candidate_keys_threaded(relation, 3, threads).unwrap(),
                        "keys diverged at seed {seed} under {pref}, {threads} threads"
                    );
                }
            }
        }
    }
}

/// The promotion boundary: under `TierPreference::Auto` a hot relation is
/// promoted to the dense tier after `promote_after` queries. The same
/// goal asked on both sides of the boundary gets the same verdict and the
/// same closure; batch sweeps that cross the boundary mid-flight agree
/// with the oracle at thread counts 1/2/8; and `reconfigure` both resets
/// the promotion history and latches `caches_invalidated` onto exactly
/// one decision.
#[test]
fn tier_promotion_boundary_preserves_answers() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let relation = only_relation(&schema);
    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();

    for policy in [EmptySetPolicy::Forbidden, EmptySetPolicy::pessimistic()] {
        let naive =
            NaiveEngine::with_policy_budget(&schema, &sigma, policy.clone(), Budget::standard())
                .unwrap();
        let expected = naive.implies(&goal).unwrap();
        let want_closure = naive.closure(&goal.base, goal.lhs()).unwrap();

        let session = Session::with_tiers(
            &schema,
            &sigma,
            policy.clone(),
            Budget::standard(),
            TierPreference::Auto,
        )
        .unwrap();
        let mut saw_dense = false;
        for i in 0..16 {
            let d = session.implies_with(&goal, &Budget::standard()).unwrap();
            assert_eq!(
                expected,
                verdict_bool(&d.verdict),
                "verdict flipped at query {i}"
            );
            if i == 0 {
                assert_ne!(d.tier, Some(Tier::Dense), "promoted with no query history");
                assert!(
                    !session.select_state().dense_built(relation),
                    "dense structure built before promotion"
                );
            }
            saw_dense |= d.tier == Some(Tier::Dense);
            let (got, _) = session.closure_traced(&goal.base, goal.lhs()).unwrap();
            assert_eq!(want_closure, got, "closure drifted at query {i}");
        }
        assert!(saw_dense, "auto never promoted the hot relation to dense");
        assert!(
            session.select_state().dense_built(relation),
            "promotion reported but no dense structure exists"
        );

        // `reconfigure` starts selection from scratch: no dense carry-over,
        // and the invalidation flag rides on exactly one decision.
        let re = session.reconfigure(policy.clone()).unwrap();
        assert!(
            !re.select_state().dense_built(relation),
            "dense structure leaked across reconfigure"
        );
        let d = re.implies_with(&goal, &Budget::standard()).unwrap();
        assert!(
            d.caches_invalidated,
            "first post-reconfigure decision must carry caches_invalidated"
        );
        assert_ne!(
            d.tier,
            Some(Tier::Dense),
            "promotion history leaked across reconfigure"
        );
        assert_eq!(expected, verdict_bool(&d.verdict));
        let d2 = re.implies_with(&goal, &Budget::standard()).unwrap();
        assert!(
            !d2.caches_invalidated,
            "caches_invalidated is a one-shot latch"
        );

        // Batch sweeps long enough to cross the boundary mid-flight: the
        // early goals run pre-promotion, the late ones on the dense tier.
        let mut rng = StdRng::seed_from_u64(0x00d5_7ea5 | 1);
        let goals: Vec<Nfd> = (0..24)
            .filter_map(|_| random_nfd(&mut rng, &schema))
            .collect();
        let expected_batch: Vec<bool> = goals.iter().map(|g| naive.implies(g).unwrap()).collect();
        for threads in [1usize, 2, 8] {
            let fresh = Session::with_tiers(
                &schema,
                &sigma,
                policy.clone(),
                Budget::standard(),
                TierPreference::Auto,
            )
            .unwrap();
            let batch = fresh
                .implies_batch(&goals, &Budget::standard(), threads)
                .unwrap();
            let got: Vec<bool> = batch
                .decisions
                .iter()
                .map(|d| verdict_bool(&d.as_ref().unwrap().verdict))
                .collect();
            assert_eq!(
                expected_batch, got,
                "boundary-crossing batch diverged at {threads} threads"
            );
        }
    }
}
