//! Thaw-vs-fresh differential census: a session thawed from a snapshot
//! must be *bit-identical* to one compiled fresh — same saturated pools,
//! same verdicts, same derivation chains, same closures, same candidate
//! keys, same verified proofs — across both empty-set policies, every
//! engine-tier preference, and batch parallelism at 1/2/8 threads.
//!
//! This is the headline correctness proof for `nfd-snap`: warm starts
//! are a pure performance optimization with zero observable semantics.

use nfd::prelude::*;
use nfd_core::nfd::parse_set;
use nfd_core::TierPreference;
use nfd_path::RootedPath;

const SCHEMA: &str = "Course : { <cnum: string, time: int,
    students: {<sid: int, age: int, grade: string>},
    books: {<isbn: string, title: string>}> };
R : { <A: int, B: {<C: int>}, D: int> };";

const SIGMA: &str = "
    Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
    Course:[books:isbn -> books:title];
    Course:students:[sid -> grade];
    Course:[students:sid -> students:age];
    Course:[time, students:sid -> cnum];
    R:[A -> B:C]; R:[B:C -> D];";

/// Goals spanning implied, not-implied, and empty-set-sensitive cases.
const GOALS: &[&str] = &[
    "Course:[time, students:sid -> books]",
    "Course:[cnum -> students:age]",
    "Course:[time -> cnum]",
    "Course:[students:sid -> books]",
    "Course:[books:isbn -> books:title]",
    "R:[A -> D]",
    "R:[B:C -> A]",
];

fn policies() -> Vec<(&'static str, EmptySetPolicy)> {
    vec![
        ("forbidden", EmptySetPolicy::Forbidden),
        ("pessimistic", EmptySetPolicy::pessimistic()),
        (
            "annotated",
            EmptySetPolicy::non_empty(vec![RootedPath::parse("R:B").unwrap()]),
        ),
    ]
}

/// Round-trips a frozen session through the byte format and thaws it,
/// asserting the codec is lossless on the way.
fn thaw_round_trip<'s>(
    fresh: &Session<'s>,
    schema: &'s Schema,
    sigma: &[Nfd],
    policy: &EmptySetPolicy,
    preference: TierPreference,
) -> Session<'s> {
    let image = fresh.freeze();
    let bytes = nfd::snap::encode(&image);
    let decoded = nfd::snap::decode(&bytes).expect("pristine image decodes");
    assert_eq!(decoded, image, "encode/decode must be lossless");
    Session::thaw(
        schema,
        sigma,
        policy.clone(),
        Budget::standard(),
        preference,
        &decoded,
    )
    .expect("pristine image thaws")
}

#[test]
fn thawed_sessions_are_bit_identical_to_fresh_compiles() {
    let schema = Schema::parse(SCHEMA).unwrap();
    let sigma = parse_set(&schema, SIGMA).unwrap();
    for (policy_name, policy) in policies() {
        for preference in [
            TierPreference::Auto,
            TierPreference::Fixed(nfd::core::Tier::Naive),
            TierPreference::Fixed(nfd::core::Tier::Indexed),
            TierPreference::Fixed(nfd::core::Tier::Dense),
        ] {
            let tag = format!("policy={policy_name} engine={preference}");
            let fresh = Session::with_tiers(
                &schema,
                &sigma,
                policy.clone(),
                Budget::standard(),
                preference,
            )
            .unwrap();
            // Warm the closure cache before freezing so the snapshot
            // carries non-trivial cache entries too.
            let base = RootedPath::parse("Course").unwrap();
            let lhs = vec![nfd_path::Path::parse("cnum").unwrap()];
            let fresh_closure = fresh.closure(&base, &lhs).unwrap();

            let thawed = thaw_round_trip(&fresh, &schema, &sigma, &policy, preference);

            // Census 1: the saturated pools, entry for entry.
            assert_eq!(
                fresh.engine().pool_dump(),
                thawed.engine().pool_dump(),
                "pool census diverged ({tag})"
            );
            thawed.engine().check_invariants().unwrap();

            // Census 2: verdicts and derivation chains per goal.
            for goal_text in GOALS {
                let goal = Nfd::parse(&schema, goal_text).unwrap();
                let fresh_verdict = fresh.implies_text(goal_text).unwrap();
                let thawed_verdict = thawed.implies_text(goal_text).unwrap();
                assert_eq!(
                    fresh_verdict, thawed_verdict,
                    "verdict diverged on {goal_text} ({tag})"
                );
                assert_eq!(
                    fresh.engine().chain_dump(&goal).unwrap(),
                    thawed.engine().chain_dump(&goal).unwrap(),
                    "chain dump diverged on {goal_text} ({tag})"
                );
            }

            // Census 3: closures (including the cache-warmed one).
            assert_eq!(
                thawed.closure(&base, &lhs).unwrap(),
                fresh_closure,
                "closure diverged ({tag})"
            );
            let r_base = RootedPath::parse("R").unwrap();
            let r_lhs = vec![nfd_path::Path::parse("A").unwrap()];
            assert_eq!(
                fresh.closure(&r_base, &r_lhs).unwrap(),
                thawed.closure(&r_base, &r_lhs).unwrap(),
                "R closure diverged ({tag})"
            );

            // Census 4: verified proofs replay across the pair.
            let provable = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
            let fresh_proof = fresh.prove(&provable).unwrap().expect("provable");
            let thawed_proof = thawed.prove(&provable).unwrap().expect("provable");
            assert_eq!(
                fresh_proof.to_string(),
                thawed_proof.to_string(),
                "proof text diverged ({tag})"
            );
            fresh.verify(&thawed_proof).unwrap();
            thawed.verify(&fresh_proof).unwrap();
        }
    }
}

#[test]
fn batch_and_keys_match_at_every_thread_count() {
    let schema = Schema::parse(SCHEMA).unwrap();
    let sigma = parse_set(&schema, SIGMA).unwrap();
    let goals: Vec<Nfd> = GOALS
        .iter()
        .map(|g| Nfd::parse(&schema, g).unwrap())
        .collect();
    for (policy_name, policy) in policies() {
        let fresh = Session::with_tiers(
            &schema,
            &sigma,
            policy.clone(),
            Budget::standard(),
            TierPreference::Auto,
        )
        .unwrap();
        let thawed = thaw_round_trip(&fresh, &schema, &sigma, &policy, TierPreference::Auto);
        for threads in [1usize, 2, 8] {
            let tag = format!("policy={policy_name} threads={threads}");
            let budget = Budget::standard();
            let fresh_batch = fresh.implies_batch(&goals, &budget, threads).unwrap();
            let thawed_batch = thawed.implies_batch(&goals, &budget, threads).unwrap();
            let fresh_verdicts: Vec<_> = fresh_batch
                .decisions
                .iter()
                .map(|d| d.as_ref().unwrap().verdict.clone())
                .collect();
            let thawed_verdicts: Vec<_> = thawed_batch
                .decisions
                .iter()
                .map(|d| d.as_ref().unwrap().verdict.clone())
                .collect();
            assert_eq!(fresh_verdicts, thawed_verdicts, "batch diverged ({tag})");
            for relation in ["Course", "R"] {
                assert_eq!(
                    fresh
                        .candidate_keys_threaded(Label::new(relation), 4, threads)
                        .unwrap(),
                    thawed
                        .candidate_keys_threaded(Label::new(relation), 4, threads)
                        .unwrap(),
                    "candidate keys of {relation} diverged ({tag})"
                );
            }
        }
    }
}

#[test]
fn freeze_after_mutation_round_trips_the_mutated_sigma() {
    let schema = Schema::parse(SCHEMA).unwrap();
    let sigma = parse_set(&schema, SIGMA).unwrap();
    let mut session = Session::new(&schema, &sigma).unwrap();
    let added = Nfd::parse(&schema, "Course:[time -> cnum]").unwrap();
    session.add_deps(std::slice::from_ref(&added)).unwrap();

    // The snapshot's Σ is the *mutated* set, so thawing requires it.
    let mut mutated = sigma.clone();
    mutated.push(added);
    let image = session.freeze();
    let bytes = nfd::snap::encode(&image);
    let decoded = nfd::snap::decode(&bytes).unwrap();
    match Session::thaw(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::standard(),
        TierPreference::Auto,
        &decoded,
    ) {
        Err(nfd::snap::SnapError::Mismatch(_)) => {}
        Err(other) => panic!("stale Σ: wrong error {other:?}"),
        Ok(_) => panic!("stale Σ must be a typed mismatch, not a thaw"),
    }

    let thawed = Session::thaw(
        &schema,
        &mutated,
        EmptySetPolicy::Forbidden,
        Budget::standard(),
        TierPreference::Auto,
        &decoded,
    )
    .unwrap();
    assert_eq!(
        session.engine().pool_dump(),
        thawed.engine().pool_dump(),
        "mutated pool census diverged"
    );
    assert!(thawed.implies_text("Course:[time -> cnum]").unwrap());
}
