//! Curated implication problems with hand-reasoned expected verdicts,
//! each cross-checked three ways: the axiomatic engine, the tableau
//! chase, and (for refusals) the Appendix A witness evaluated by the
//! satisfaction checker.

mod common;

use nfd::chase;
use nfd::core::engine::Engine;
use nfd::core::nfd::parse_set;
use nfd::core::{construct, satisfy, Nfd};
use nfd::model::Schema;

/// Runs one case: asserts the engine verdict, the chase agreement, and —
/// when refused — the Appendix A witness.
fn case(schema_text: &str, sigma_text: &str, goal_text: &str, expected: bool, why: &str) {
    let schema = Schema::parse(schema_text).unwrap();
    let sigma = parse_set(&schema, sigma_text).unwrap();
    let goal = Nfd::parse(&schema, goal_text).unwrap();
    let engine = Engine::new(&schema, &sigma).unwrap();
    let by_engine = engine.implies(&goal).unwrap();
    assert_eq!(by_engine, expected, "engine: {goal_text} — {why}");
    let by_chase = chase::implies_by_chase(&schema, &sigma, &goal).unwrap();
    assert_eq!(by_chase, expected, "chase: {goal_text} — {why}");
    if !expected {
        let built = construct::counterexample(&engine, &goal.base, goal.lhs())
            .expect("witness construction");
        assert!(
            satisfy::satisfies_all(&schema, &built.instance, &sigma).unwrap(),
            "witness must satisfy Σ: {goal_text}"
        );
        assert!(
            !satisfy::check(&schema, &built.instance, &goal)
                .unwrap()
                .holds,
            "witness must violate the goal: {goal_text}"
        );
    } else {
        // Implied goals must carry a verifiable proof.
        let pf = nfd::core::proof::prove(&engine, &goal).unwrap().unwrap();
        nfd::core::proof::verify(&engine, &pf).unwrap();
    }
}

const DEEP: &str = "R : { <A: {<B: {<C: int, D: int>}, E: {<F: int, G: int>}>}, H: int> };";

#[test]
fn set_determination_does_not_reach_elements() {
    // Knowing the SET A does not fix values chosen inside it.
    case(
        DEEP,
        "R:[H -> A];",
        "R:[H -> A:B]",
        false,
        "A's value does not determine which B-set an element choice yields",
    );
    case(
        DEEP,
        "R:[H -> A];",
        "R:[H -> A:B:C]",
        false,
        "two levels down is certainly not determined",
    );
}

#[test]
fn element_determination_does_not_reach_sets() {
    // Determining every element attribute reaches the set only through
    // the singleton rule — which needs ALL attributes.
    case(
        DEEP,
        "R:[H -> A:B:C];",
        "R:[H -> A:B]",
        false,
        "C alone does not pin the B-set (D is free)",
    );
    // Subtle: with BOTH leaf attributes pinned by H, every B-set anywhere
    // (under any A-element, in any tuple with that H) contains exactly
    // the one record <C:c, D:d> — so all B-sets coincide and H → A:B
    // holds. The engine sees this through full-locality + singleton.
    case(
        DEEP,
        "R:[H -> A:B:C]; R:[H -> A:B:D];",
        "R:[H -> A:B]",
        true,
        "all B-sets are pinned to the same singleton, hence equal",
    );
}

#[test]
fn singleton_through_two_levels() {
    // Forcing both attribute levels singleton lets H reach A itself.
    case(
        DEEP,
        "R:[H -> A:B:C]; R:[H -> A:B:D]; R:[H -> A:E:F]; R:[H -> A:E:G];",
        "R:[H -> A]",
        true,
        "all leaf attributes determined ⟹ B and E singleton ⟹ A's elements \
         fully determined ⟹ A singleton ⟹ A determined",
    );
    // But dropping any one leaf breaks the chain.
    case(
        DEEP,
        "R:[H -> A:B:C]; R:[H -> A:B:D]; R:[H -> A:E:F];",
        "R:[H -> A]",
        false,
        "E:G is free, so E is not singleton and A's elements are not pinned",
    );
}

#[test]
fn constants_propagate_into_sets() {
    // A constant RHS constrains every navigation, including within sets.
    case(
        DEEP,
        "R:[ -> A:B:C];",
        "R:A:B:[ -> C]",
        true,
        "a database-wide constant is in particular locally constant",
    );
    case(
        DEEP,
        "R:[ -> A:B:C];",
        "R:A:[B:C -> B:D]",
        false,
        "constant C means ALL B:C agree; D remains free, so C cannot select D",
    );
    // Local constants do NOT globalize into value determination:
    case(
        DEEP,
        "R:A:B:[ -> C];",
        "R:[ -> A:B:C]",
        false,
        "C constant within each B-set, but different sets may use different constants",
    );
}

#[test]
fn local_to_global_and_back() {
    // Global implies local (restrict both navigations to one tuple)…
    case(
        DEEP,
        "R:[A:B:C -> A:B:D];",
        "R:A:B:[C -> D]",
        true,
        "a database-wide dependency holds in particular within each set",
    );
    // …but local does not imply global.
    case(
        DEEP,
        "R:A:B:[C -> D];",
        "R:[A:B:C -> A:B:D]",
        false,
        "per-set consistency says nothing across sets",
    );
    // The simple-form equivalent of the local NFD IS implied.
    case(
        DEEP,
        "R:A:B:[C -> D];",
        "R:[A, A:B, A:B:C -> A:B:D]",
        true,
        "push-in equivalence",
    );
}

#[test]
fn equal_or_disjoint_interactions() {
    // A:B:C → A:B forces B-sets sharing a C to coincide — but it does NOT
    // make C select an element within the set: one (shared) B-set may
    // contain <C:c, D:1> and <C:c, D:2>, satisfying Σ (within a tuple the
    // set trivially equals itself) while violating C → D.
    case(
        DEEP,
        "R:[A:B:C -> A:B];",
        "R:[A:B:C -> A:B:D]",
        false,
        "equal-or-disjoint constrains the sets, not element selection inside them",
    );
    case(
        DEEP,
        "R:[A:B:C -> A:B:D];",
        "R:[A:B:C -> A:B]",
        false,
        "determining one attribute does not determine the containing set",
    );
}

#[test]
fn lhs_set_values_scope_correctly() {
    // {A, A:E:F} → ... : equality of the whole A set plus an inner F.
    case(
        DEEP,
        "R:A:[E:F -> E:G]; ",
        "R:[A, A:E:F -> A:E:G]",
        true,
        "with A fixed as a set, the local dependency applies",
    );
    case(
        DEEP,
        "R:A:[E:F -> E:G]; ",
        "R:[A:E:F -> A:E:G]",
        false,
        "without A in the LHS the dependency must hold across different A sets — it does not",
    );
    // The set-valued path A:E in the LHS scopes to matching E-sets only.
    case(
        DEEP,
        "R:A:E:[F -> G];",
        "R:[A:E, A:E:F -> A:E:G]",
        true,
        "equal E-sets have identical elements, so the per-set dependency transfers",
    );
}

#[test]
fn cross_branch_independence() {
    // Dependencies under B say nothing about E and vice versa.
    case(
        DEEP,
        "R:[A:B:C -> A:B:D];",
        "R:[A:E:F -> A:E:G]",
        false,
        "disjoint subtrees are independent",
    );
    case(
        DEEP,
        "R:A:[B -> E]; R:A:E:[ -> F];",
        "R:A:[B -> E:F]",
        true,
        "B fixes the E-set; F is constant within every E-set; so B fixes F",
    );
}

#[test]
fn base_set_paths() {
    // A set of base values can be determined and can determine, but has
    // no interior to traverse.
    let schema = "R : { <K: int, S: {int}, T: {int}> };";
    case(schema, "R:[K -> S];", "R:[K -> S]", true, "identity");
    case(
        schema,
        "R:[K -> S]; R:[S -> T];",
        "R:[K -> T]",
        true,
        "chaining through a base set",
    );
    case(schema, "R:[K -> S];", "R:[S -> K]", false, "no inversion");
}

#[test]
fn degenerate_and_trivial_shapes() {
    case(DEEP, "", "R:[A, H -> H]", true, "reflexivity needs no Σ");
    case(
        DEEP,
        "R:[ -> H];",
        "R:[A -> H]",
        true,
        "constants are implied under any LHS",
    );
    case(
        DEEP,
        "R:[A -> H];",
        "R:[ -> H]",
        false,
        "conditioning cannot be dropped",
    );
    // An inconsistent-looking but satisfiable Σ: H constant and H → A.
    case(
        DEEP,
        "R:[ -> H]; R:[H -> A];",
        "R:[ -> A]",
        true,
        "H is constant and determines A, so A is constant",
    );
}
