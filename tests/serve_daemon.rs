//! End-to-end tests of `nfdtool serve`'s registry daemon, feature-off
//! (the armed chaos-side tests live in `serve_chaos.rs`).
//!
//! The load-bearing assertion is *differential*: every verdict served
//! over the wire must be bit-identical to a direct in-process
//! [`Session`] on the same `(Schema, Σ)` — the transport, actor
//! threads, admission gate and quota metering may refuse or delay an
//! answer, but may never change one.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

use nfd::prelude::*;
use nfd::serve::{Registry, RegistryConfig};

/// The paper's Course schema (one line, as the `LOAD` verb wants it).
fn course_sources() -> (String, String) {
    let schema = std::fs::read_to_string("examples/data/course.nfds").expect("course.nfds");
    let deps = std::fs::read_to_string("examples/data/course.nfdd").expect("course.nfdd");
    (one_line(&schema), one_line(&deps))
}

/// Protocol lines are `\n`-framed, so multi-line sources ride flattened —
/// with `#` comments stripped first, since flattening would otherwise
/// extend the first comment over the whole request.
fn one_line(src: &str) -> String {
    src.lines()
        .map(|line| line.split('#').next().unwrap_or(""))
        .flat_map(str::split_whitespace)
        .collect::<Vec<_>>()
        .join(" ")
}

fn start(
    registry_cfg: RegistryConfig,
    server_cfg: ServerConfig,
) -> (SocketAddr, JoinHandle<ServerStats>) {
    let server =
        Server::bind("127.0.0.1:0", server_cfg, Registry::new(registry_cfg)).expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, std::thread::spawn(move || server.run().expect("run")))
}

fn quick_server_cfg() -> ServerConfig {
    ServerConfig {
        idle_poll_ms: 5,
        ..ServerConfig::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn ask(&mut self, line: &str) -> String {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    }
}

/// A sweep of goals spanning implied / not-implied / nested shapes on
/// the Course schema — the differential corpus.
const SWEEP: [&str; 8] = [
    "Course:[time, students:sid -> books]",
    "Course:[students:sid -> books]",
    "Course:[cnum -> time]",
    "Course:[time -> cnum]",
    "Course:[cnum -> books:title]",
    "Course:[books:isbn -> books:title]",
    "Course:students:[sid -> grade]",
    "Course:[students:sid -> students:age]",
];

#[test]
fn wire_verdicts_are_bit_identical_to_a_direct_session() {
    let (schema_src, deps_src) = course_sources();
    let schema = Schema::parse(&schema_src).expect("schema parses");
    let sigma = nfd::core::nfd::parse_set(&schema, &deps_src).expect("deps parse");
    let direct = Session::new(&schema, &sigma).expect("direct session");

    let (addr, server) = start(RegistryConfig::default(), quick_server_cfg());
    let mut c = Client::connect(addr);
    let loaded = c.ask(&format!("LOAD course {schema_src} | {deps_src}"));
    assert_eq!(loaded, format!("OK loaded deps={}", sigma.len()));

    for goal in SWEEP {
        let expected = if direct.implies_text(goal).expect("direct verdict") {
            "OK implied"
        } else {
            "OK not-implied"
        };
        assert_eq!(
            c.ask(&format!("IMPLIES course {goal}")),
            expected,
            "wire and in-process verdicts must agree on {goal}"
        );
    }

    // BATCH over the same sweep: one line, per-goal verdicts, same bits.
    let batch_goals = SWEEP.join("; ");
    let expected: Vec<&str> = SWEEP
        .iter()
        .map(|g| {
            if direct.implies_text(g).expect("direct") {
                "implied"
            } else {
                "not-implied"
            }
        })
        .collect();
    assert_eq!(
        c.ask(&format!("BATCH course {batch_goals}")),
        format!("OK {}", expected.join(","))
    );

    // CLOSURE and KEYS agree with the direct session too.
    let base = RootedPath::parse("Course").expect("base");
    let lhs = [Path::parse("cnum").expect("lhs")];
    let direct_closure = direct
        .closure(&base, &lhs)
        .expect("direct closure")
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    assert_eq!(
        c.ask("CLOSURE course Course cnum"),
        format!("OK {direct_closure}")
    );
    let wire_keys = c.ask("KEYS course Course");
    let direct_keys = direct
        .candidate_keys(Label::new("Course"), 4)
        .expect("direct keys");
    for key in &direct_keys {
        let rendered = format!(
            "{{{}}}",
            key.iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(
            wire_keys.contains(&rendered),
            "{wire_keys} missing {rendered}"
        );
    }

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 0);
}

#[test]
fn protocol_failures_are_typed_not_fatal() {
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(RegistryConfig::default(), quick_server_cfg());
    let mut c = Client::connect(addr);

    // Unknown tenant, unparsable sources, malformed requests: all ERR,
    // all on a connection that keeps serving afterwards.
    let unknown = c.ask("IMPLIES ghost Course:[cnum -> time]");
    assert!(
        unknown.starts_with("ERR") && unknown.contains("unknown tenant"),
        "{unknown}"
    );
    let bad_schema = c.ask("LOAD bad not a schema | junk");
    assert!(bad_schema.starts_with("ERR"), "{bad_schema}");
    let bad_verb = c.ask("FROBNICATE x");
    assert!(bad_verb.starts_with("ERR"), "{bad_verb}");
    let no_sep = c.ask("LOAD t missing-the-separator");
    assert!(no_sep.starts_with("ERR"), "{no_sep}");

    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    // A goal that fails to parse against the loaded schema: ERR, and
    // the very next request on the same tenant answers normally.
    let bad_goal = c.ask("IMPLIES course Course:[nope -> nothing]");
    assert!(bad_goal.starts_with("ERR"), "{bad_goal}");
    assert_eq!(c.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
}

#[test]
fn tenant_quotas_meter_exhaust_and_recover() {
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(
        RegistryConfig {
            default_quota: Some(50_000),
            ..RegistryConfig::default()
        },
        quick_server_cfg(),
    );
    let mut c = Client::connect(addr);
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    assert_eq!(c.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");

    // Drain the quota to zero: the next query is refused *typed* —
    // EXHAUSTED, not ERR, not a dropped connection.
    assert_eq!(c.ask("QUOTA course 0"), "OK quota=0");
    let denied = c.ask("IMPLIES course Course:[cnum -> time]");
    assert!(
        denied.starts_with("EXHAUSTED") && denied.contains("quota"),
        "{denied}"
    );
    // Control plane still works while the tenant is starved.
    let stats = c.ask("STATS");
    assert!(stats.contains("quota_denials=1"), "{stats}");

    // Refill: the same warm session serves again.
    assert_eq!(c.ask("QUOTA course 50000"), "OK quota=50000");
    assert_eq!(c.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
}

#[test]
fn lru_keeps_hot_tenants_resident() {
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(
        RegistryConfig {
            max_resident: 2,
            ..RegistryConfig::default()
        },
        quick_server_cfg(),
    );
    let mut c = Client::connect(addr);
    let load = |c: &mut Client, name: &str| {
        assert_eq!(
            c.ask(&format!("LOAD {name} {schema_src} | {deps_src}")),
            "OK loaded deps=7",
            "loading {name}"
        );
    };
    load(&mut c, "a");
    load(&mut c, "b");
    // Touch `a`, making `b` the coldest when `c` arrives.
    assert_eq!(c.ask("IMPLIES a Course:[cnum -> time]"), "OK implied");
    load(&mut c, "cc");
    let evicted = c.ask("IMPLIES b Course:[cnum -> time]");
    assert!(
        evicted.starts_with("ERR") && evicted.contains("unknown tenant"),
        "{evicted}"
    );
    assert_eq!(c.ask("IMPLIES a Course:[cnum -> time]"), "OK implied");
    assert_eq!(c.ask("IMPLIES cc Course:[cnum -> time]"), "OK implied");
    let stats = c.ask("STATS");
    assert!(stats.contains("evicted_lru=1"), "{stats}");
    assert!(stats.contains("sessions=2"), "{stats}");

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
}

#[test]
fn concurrent_connections_share_one_tenant() {
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(RegistryConfig::default(), quick_server_cfg());
    let mut c = Client::connect(addr);
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    let workers: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let goal = SWEEP[i % SWEEP.len()];
                c.ask(&format!("IMPLIES course {goal}"))
            })
        })
        .collect();
    for (i, worker) in workers.into_iter().enumerate() {
        let resp = worker.join().expect("client thread");
        assert!(
            resp == "OK implied" || resp == "OK not-implied",
            "connection {i}: {resp}"
        );
    }
    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.connections, 9);
}

/// The real binary: boot `nfdtool serve`, scrape the resolved port off
/// stderr, drive a session over TCP, and assert a clean drain (exit 0).
#[test]
fn spawned_binary_serves_and_drains_cleanly() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_nfdtool"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("nfdtool serve spawns");

    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr);
    let mut banner = String::new();
    lines.read_line(&mut banner).expect("listening banner");
    let addr: SocketAddr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("banner names the address")
        .parse()
        .expect("address parses");

    let (schema_src, deps_src) = course_sources();
    let mut c = Client::connect(addr);
    assert_eq!(c.ask("PING"), "OK pong");
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    assert_eq!(
        c.ask("IMPLIES course Course:[time, students:sid -> books]"),
        "OK implied"
    );
    assert_eq!(c.ask("SHUTDOWN"), "OK draining");

    let out = child.wait_with_output().expect("child exits");
    assert_eq!(out.status.code(), Some(0), "clean drain exits 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("drained cleanly"), "{stdout}");
}

/// The tentpole's wire contract: `ADDDEP`/`DROPDEP` mutate the resident
/// session and every verdict afterwards is bit-identical to an
/// in-process [`Session`] mutated through the same
/// `add_deps`/`remove_deps` API. Eviction then proves mutations are
/// resident-state only: a reload recompiles from the `LOAD` sources and
/// the sweep reverts to the unmutated session.
#[test]
fn wire_mutations_match_an_in_process_mutated_session() {
    let (schema_src, deps_src) = course_sources();
    let schema = Schema::parse(&schema_src).expect("schema parses");
    let sigma = nfd::core::nfd::parse_set(&schema, &deps_src).expect("deps parse");
    let mut direct = Session::new(&schema, &sigma).expect("direct session");

    let (addr, server) = start(RegistryConfig::default(), quick_server_cfg());
    let mut c = Client::connect(addr);
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    let sweep = |c: &mut Client, direct: &Session, ctx: &str| {
        for goal in SWEEP {
            let expected = if direct.implies_text(goal).expect("direct verdict") {
                "OK implied"
            } else {
                "OK not-implied"
            };
            assert_eq!(
                c.ask(&format!("IMPLIES course {goal}")),
                expected,
                "{ctx}: wire and in-process verdicts must agree on {goal}"
            );
        }
    };

    // ADDDEP: students:sid now determines cnum, which flips the sweep's
    // "students:sid -> books" goal from not-implied to implied.
    let added = Nfd::parse(&schema, "Course:[students:sid -> cnum]").expect("added dep");
    direct
        .add_deps(std::slice::from_ref(&added))
        .expect("direct add");
    let resp = c.ask("ADDDEP course Course:[students:sid -> cnum]");
    assert!(resp.starts_with("OK added relation=Course pool="), "{resp}");
    sweep(&mut c, &direct, "after ADDDEP");

    // DROPDEP: retracting cnum -> time flips that goal back off.
    let dropped = Nfd::parse(&schema, "Course:[cnum -> time]").expect("dropped dep");
    direct
        .remove_deps(std::slice::from_ref(&dropped))
        .expect("direct drop");
    let resp = c.ask("DROPDEP course Course:[cnum -> time]");
    assert!(
        resp.starts_with("OK dropped relation=Course pool="),
        "{resp}"
    );
    sweep(&mut c, &direct, "after DROPDEP");

    // Closures ride the same mutated Σ.
    let base = RootedPath::parse("Course").expect("base");
    let lhs = [Path::parse("cnum").expect("lhs")];
    let direct_closure = direct
        .closure(&base, &lhs)
        .expect("direct closure")
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    assert_eq!(
        c.ask("CLOSURE course Course cnum"),
        format!("OK {direct_closure}")
    );

    // Retracting an absent dep: typed ERR, warm session keeps serving.
    let err = c.ask("DROPDEP course Course:[cnum -> time]");
    assert!(err.starts_with("ERR") && err.contains("not in"), "{err}");
    sweep(&mut c, &direct, "after failed DROPDEP");

    // Evict and reload: mutations were resident-state only, so the
    // recompiled tenant answers from the original `LOAD` sources.
    assert_eq!(c.ask("EVICT course"), "OK evicted");
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    let pristine = Session::new(&schema, &sigma).expect("pristine session");
    sweep(&mut c, &pristine, "after evict + reload");

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 0);
}

/// Mutations are workload verbs: metered against the tenant quota (the
/// charge is the rebuilt pool size) and refused typed once it drains.
#[test]
fn mutations_are_metered_against_the_tenant_quota() {
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(RegistryConfig::default(), quick_server_cfg());
    let mut c = Client::connect(addr);
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    // A Course rebuild replays far more than 2 pool entries, so one
    // mutation drains this quota to zero.
    assert_eq!(c.ask("QUOTA course 2"), "OK quota=2");
    let resp = c.ask("ADDDEP course Course:[students:sid -> cnum]");
    assert!(resp.starts_with("OK added"), "{resp}");
    let denied = c.ask("DROPDEP course Course:[students:sid -> cnum]");
    assert!(
        denied.starts_with("EXHAUSTED") && denied.contains("quota"),
        "mutations must be admission-gated like any workload verb: {denied}"
    );

    // Refill: the mutation applied before the drain is still in force.
    assert_eq!(c.ask("QUOTA course 50000"), "OK quota=50000");
    assert_eq!(
        c.ask("IMPLIES course Course:[students:sid -> books]"),
        "OK implied",
        "the charged mutation must have been applied, not rolled back"
    );

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
}

/// The read-parallel observability fields ride on STATS: worker count,
/// epoch swaps, queue depth, closure-cache hits/misses (per tenant and
/// for the shared cross-tenant pool). Two tenants loaded from identical
/// sources share one pooled cache, so the second tenant's CLOSURE is a
/// hit on closures the first tenant computed.
#[test]
fn stats_reports_cache_and_epoch_observability() {
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(
        RegistryConfig {
            workers: 2,
            ..RegistryConfig::default()
        },
        quick_server_cfg(),
    );
    let mut c = Client::connect(addr);
    assert!(c
        .ask(&format!("LOAD a {schema_src} | {deps_src}"))
        .starts_with("OK"));
    assert!(c
        .ask(&format!("LOAD b {schema_src} | {deps_src}"))
        .starts_with("OK"));

    // Tenant `a` computes a closure; tenant `b` asks for the same one
    // and hits the shared pool entry.
    assert!(c.ask("CLOSURE a Course cnum").starts_with("OK"));
    assert!(c.ask("CLOSURE b Course cnum").starts_with("OK"));

    let stats = c.ask("STATS");
    for field in [
        "workers=2",
        "epoch_swaps=0",
        "worker_queue_depth=",
        "closure_hits=",
        "closure_misses=",
        "shared_caches=1",
        "shared_cache_hits=",
        "shared_cache_misses=",
        "tenant_cache=[",
    ] {
        assert!(stats.contains(field), "missing `{field}` in: {stats}");
    }
    let hits: u64 = stats
        .split("closure_hits=")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .expect("closure_hits parses");
    assert!(
        hits >= 1,
        "cross-tenant cache sharing produced no hit: {stats}"
    );

    // A mutation swaps tenant `b` onto a fresh epoch (and a private
    // cache): epoch_swaps ticks, and the shared pool keeps serving `a`.
    assert!(c
        .ask("ADDDEP b Course:[time -> cnum]")
        .starts_with("OK added"));
    let stats = c.ask("STATS");
    assert!(stats.contains("epoch_swaps=1"), "{stats}");
    assert!(stats.contains("shared_caches=1"), "{stats}");
    assert_eq!(c.ask("IMPLIES a Course:[time -> cnum]"), "OK not-implied");
    assert_eq!(c.ask("IMPLIES b Course:[time -> cnum]"), "OK implied");

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 0);
}
