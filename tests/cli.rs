//! End-to-end tests of the `nfdtool` CLI (through `nfd::cli::run`, which
//! the binary wraps 1:1).

use std::path::PathBuf;

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("nfdtool-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Fixture { dir }
    }

    fn file(&self, name: &str, contents: &str) -> String {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn run(args: &[&str]) -> (i32, String) {
    let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = String::new();
    let code = nfd::cli::run(&args, &mut out);
    (code, out)
}

const COURSE_SCHEMA: &str = "Course : { <cnum: string, time: int,
    students: {<sid: int, age: int, grade: string>},
    books: {<isbn: string, title: string>}> };";

const COURSE_DEPS: &str = "
    Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
    Course:[books:isbn -> books:title];
    Course:students:[sid -> grade];
    Course:[students:sid -> students:age];
    Course:[time, students:sid -> cnum];";

const GOOD_INSTANCE: &str = r#"Course = {
    <cnum: "cis550", time: 10,
     students: {<sid: 1001, age: 20, grade: "A">},
     books: {<isbn: "0-13", title: "DB">}> };"#;

const BAD_INSTANCE: &str = r#"Course = {
    <cnum: "x", time: 1, students: {<sid: 1, age: 20, grade: "A">},
     books: {<isbn: "i", title: "t">}>,
    <cnum: "y", time: 2, students: {<sid: 1, age: 30, grade: "A">},
     books: {<isbn: "i", title: "t">}> };"#;

#[test]
fn check_accepts_and_rejects() {
    let f = Fixture::new("check");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let good = f.file("good.nfdi", GOOD_INSTANCE);
    let bad = f.file("bad.nfdi", BAD_INSTANCE);

    let (code, out) = run(&[
        "check",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--instance",
        &good,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("7 of 7 constraints hold"), "{out}");

    let (code, out) = run(&[
        "check",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--instance",
        &bad,
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("FAIL"), "{out}");
    assert!(out.contains("witness"), "{out}");
}

#[test]
fn implies_and_prove() {
    let f = Fixture::new("implies");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);

    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "Course:[time, students:sid -> books]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("implied"), "{out}");

    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "Course:[students:sid -> books]",
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("not implied"), "{out}");

    let (code, out) = run(&[
        "prove",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "Course:[time, students:sid -> books]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Proof of"), "{out}");
    assert!(out.contains("transitivity"), "{out}");
}

#[test]
fn implies_batch_mode() {
    let f = Fixture::new("batch");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);

    // All implied → exit 0, one verdict line per goal.
    let all_good = f.file(
        "good.goals",
        "Course:[time, students:sid -> books];
         Course:[books:isbn -> books:title];",
    );
    let (code, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--goals", &all_good,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("2 of 2 goals implied"), "{out}");

    // A mixed file → exit 1, with per-goal verdicts.
    let mixed = f.file(
        "mixed.goals",
        "Course:[cnum -> time];
         Course:[students:sid -> books];
         Course:[time -> cnum];",
    );
    let (code, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--goals", &mixed,
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("1 of 3 goals implied"), "{out}");
    assert!(out.contains("not implied  Course:[time -> cnum]"), "{out}");

    // Empty goals file is a usage error.
    let empty = f.file("empty.goals", "");
    let (code, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--goals", &empty,
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("no NFDs"), "{out}");
}

#[test]
fn closure_and_witness() {
    let f = Fixture::new("closure");
    let schema = f.file(
        "s.nfds",
        "R : { <A: int, B: {<C: int>}, D: int, E: {<F: int, G: int>},
               H: {<J: int, L: int>}, I: int, M: {<N: int, O: int>}> };",
    );
    let deps = f.file(
        "d.nfdd",
        "R:[A -> B:C]; R:[B:C -> D]; R:[D -> E:F];
         R:[A -> E:G]; R:[B:C -> H]; R:[I -> H:J];",
    );
    let (code, out) = run(&[
        "closure", "--schema", &schema, "--deps", &deps, "--base", "R", "--lhs", "B",
    ]);
    assert_eq!(code, 0, "{out}");
    // Example A.1's closure, one path per line.
    for p in ["R:B", "R:B:C", "R:D", "R:E:F", "R:H", "R:H:J"] {
        assert!(out.contains(p), "missing {p} in:\n{out}");
    }
    assert!(out.contains("(6 paths)"), "{out}");

    let (code, out) = run(&[
        "witness", "--schema", &schema, "--deps", &deps, "--base", "R", "--lhs", "B",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("# closure:"), "{out}");
    assert!(out.contains("R = {"), "{out}");
}

#[test]
fn keys_and_analyze() {
    let f = Fixture::new("keys");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("{cnum}"), "{out}");

    let (code, out) = run(&["analyze", "--schema", &schema, "--deps", &deps]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("minimal cover"), "{out}");
    assert!(out.contains("forced singleton sets"), "{out}");
}

#[test]
fn render_draws_tables() {
    let f = Fixture::new("render");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let inst = f.file("i.nfdi", GOOD_INSTANCE);
    let (code, out) = run(&["render", "--schema", &schema, "--instance", &inst]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("| cnum"), "{out}");
    assert!(out.contains("cis550"), "{out}");
}

#[test]
fn policy_flag_switches_regime() {
    let f = Fixture::new("policy");
    let schema = f.file("s.nfds", "R : { <A: int, B: {<C: int>}, D: int> };");
    let deps = f.file("d.nfdd", "R:[A -> B:C]; R:[B:C -> D];");
    // Strict (default): Example 3.2's inference goes through.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "R:[A -> D]",
    ]);
    assert_eq!(code, 0, "{out}");
    // Pessimistic: refused.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--policy",
        "pessimistic",
        "R:[A -> D]",
    ]);
    assert_eq!(code, 1, "{out}");
    // Declaring R:B non-empty restores it.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--policy",
        "nonempty:R:B",
        "R:[A -> D]",
    ]);
    assert_eq!(code, 0, "{out}");
    // Bad policy string is a usage error.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--policy",
        "maybe",
        "R:[A -> D]",
    ]);
    assert_eq!(code, 2);
    assert!(out.contains("--policy"), "{out}");
}

#[test]
fn error_paths() {
    let f = Fixture::new("errors");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    // Missing required flags.
    let (code, out) = run(&["closure", "--schema", &schema]);
    assert_eq!(code, 2);
    assert!(out.contains("--deps is required"), "{out}");
    // Nonexistent file.
    let (code, out) = run(&[
        "check",
        "--schema",
        "/nonexistent/x",
        "--deps",
        "/y",
        "--instance",
        "/z",
    ]);
    assert_eq!(code, 2);
    assert!(out.contains("cannot read"), "{out}");
    // Malformed goal.
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "not an nfd",
    ]);
    assert_eq!(code, 2);
    assert!(out.contains("goal:"), "{out}");
}

#[test]
fn budget_flags_and_exhausted_exit_code() {
    let f = Fixture::new("budget");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);

    // A generous budget behaves exactly like no budget.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--budget",
        "100000",
        "--timeout-ms",
        "60000",
        "Course:[time, students:sid -> books]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("implied"), "{out}");

    // Starvation: exit 3 with an exhaustion report, not a wrong verdict.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--budget",
        "1",
        "Course:[time, students:sid -> books]",
    ]);
    assert_eq!(code, 3, "{out}");
    assert!(out.contains("exhausted"), "{out}");

    // Bad flag values are usage errors.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--budget",
        "lots",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("--budget"), "{out}");
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--timeout-ms",
        "-5",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("--timeout-ms"), "{out}");
}

#[test]
fn budget_flags_cover_other_subcommands() {
    let f = Fixture::new("budget2");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);

    // keys under starvation: exhausted, exit 3.
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
        "--budget",
        "1",
    ]);
    assert_eq!(code, 3, "{out}");
    assert!(out.contains("exhausted"), "{out}");

    // closure under a generous budget still works.
    let (code, out) = run(&[
        "closure", "--schema", &schema, "--deps", &deps, "--base", "Course", "--lhs", "cnum",
        "--budget", "100000",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Course:time"), "{out}");

    // batch goals under starvation: exit 3 and a per-goal marker.
    let goals = f.file("g.nfdd", "Course:[cnum -> time]; Course:[time -> cnum];");
    let (code, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--goals", &goals, "--budget", "1",
    ]);
    assert_eq!(code, 3, "{out}");
    assert!(out.contains("exhausted"), "{out}");
}

#[test]
fn retry_escalation_heals_a_starved_budget_end_to_end() {
    let f = Fixture::new("retry");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let goals = f.file("g.goals", "Course:[cnum -> time]; Course:[cnum -> books];");

    // `--budget 1` is too small even to *build* the session, so plain
    // implies exits 3 (asserted in budget_flags_and_exhausted_exit_code).
    // With --retry the build and the queries escalate until they fit:
    // the starved run becomes an answer, not an honest shrug.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--budget",
        "1",
        "--retry",
        "6",
        "--escalate",
        "10",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("implied"), "{out}");

    // Batch mode heals the same way, and the verdicts stay per-goal.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--goals",
        &goals,
        "--budget",
        "1",
        "--retry",
        "6",
        "--escalate",
        "10",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("2 of 2 goals implied"), "{out}");

    // A retry cap too small to ever fit still reports exhaustion.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--budget",
        "1",
        "--retry",
        "1",
        "--escalate",
        "1",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 3, "{out}");
    assert!(out.contains("exhausted"), "{out}");

    // --escalate without --retry is a usage error.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--escalate",
        "4",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("--escalate requires --retry"), "{out}");
}

#[test]
fn engine_flag_forces_tiers_and_reports_them() {
    let f = Fixture::new("engine");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let goal = "Course:[time, students:sid -> books]";

    // Every forced tier (and auto) returns the same verdict, and the flag
    // makes the serving tier visible.
    for engine in ["auto", "naive", "indexed", "dense"] {
        let (code, out) = run(&[
            "implies", "--schema", &schema, "--deps", &deps, "--engine", engine, goal,
        ]);
        assert_eq!(code, 0, "--engine {engine}: {out}");
        assert!(out.contains("implied"), "--engine {engine}: {out}");
        assert!(out.contains("(engine tier: "), "--engine {engine}: {out}");
    }
    let (_, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--engine", "dense", goal,
    ]);
    assert!(out.contains("(engine tier: dense)"), "{out}");

    // Without the flag the output stays exactly as before — no tier line.
    let (code, out) = run(&["implies", "--schema", &schema, "--deps", &deps, goal]);
    assert_eq!(code, 0, "{out}");
    assert!(!out.contains("engine tier"), "{out}");

    // Batch mode prints a tier tally.
    let goals = f.file("g.goals", "Course:[cnum -> time]; Course:[time -> cnum];");
    let (code, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--goals", &goals, "--engine", "indexed",
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("(engine tiers: "), "{out}");

    // closure and keys accept the flag and report.
    let (code, out) = run(&[
        "closure", "--schema", &schema, "--deps", &deps, "--base", "Course", "--lhs", "cnum",
        "--engine", "dense",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("(engine tier: dense)"), "{out}");
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
        "--engine",
        "dense",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("{cnum}"), "{out}");
    assert!(out.contains("dense closure built: yes"), "{out}");

    // A bad value is a usage error.
    let (code, out) = run(&[
        "implies", "--schema", &schema, "--deps", &deps, "--engine", "turbo", goal,
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("--engine"), "{out}");
}

#[test]
fn implies_add_dep_supplies_missing_dependency() {
    let f = Fixture::new("adddep");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    // Deps file without `Course:[cnum -> time]`.
    let deps = f.file(
        "d.nfdd",
        "Course:[cnum -> students]; Course:[books:isbn -> books:title];",
    );
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 1, "{out}");
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--add-dep",
        "Course:[cnum -> time]",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("implied"), "{out}");
}

#[test]
fn implies_drop_dep_retracts_and_flips_verdict() {
    let f = Fixture::new("dropdep");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--drop-dep",
        "Course:[cnum -> time]",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("not implied"), "{out}");
    // Dropping an NFD that is not in the set is a usage error (exit 2).
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--drop-dep",
        "Course:[time -> books]",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("not in"), "{out}");
}

#[test]
fn closure_respects_mutations() {
    let f = Fixture::new("closure-mut");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", "Course:[cnum -> time];");
    let (code, out) = run(&[
        "closure",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--add-dep",
        "Course:[time -> students]",
        "--base",
        "Course",
        "--lhs",
        "cnum",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("students"), "{out}");
    let (code, out) = run(&[
        "closure",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--drop-dep",
        "Course:[cnum -> time]",
        "--base",
        "Course",
        "--lhs",
        "cnum",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(!out.contains("time"), "{out}");
}

#[test]
fn keys_respects_mutation_flags() {
    let f = Fixture::new("keys-mut");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    // Baseline: {time, students:sid} determines cnum, so adding nothing
    // keeps {cnum} the only singleton-rooted key.
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("{cnum}"), "{out}");
    // Adding Course:[time -> cnum] makes {time} a candidate key too.
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
        "--add-dep",
        "Course:[time -> cnum]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("{time}"), "{out}");
    // Dropping Course:[cnum -> time] dethrones {cnum}.
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
        "--drop-dep",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(!out.contains("{cnum}\n"), "{out}");
    // Dropping an absent NFD stays a usage error here too.
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--relation",
        "Course",
        "--drop-dep",
        "Course:[time -> books]",
    ]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("not in"), "{out}");
}

#[test]
fn prove_respects_mutation_flags() {
    let f = Fixture::new("prove-mut");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", "Course:[cnum -> students];");
    // Unprovable from the file alone…
    let (code, out) = run(&[
        "prove",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 1, "{out}");
    // …provable once --add-dep supplies the premise.
    let (code, out) = run(&[
        "prove",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--add-dep",
        "Course:[cnum -> time]",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Proof of"), "{out}");
    // --drop-dep retracts a premise and the proof disappears.
    let (code, out) = run(&[
        "prove",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--drop-dep",
        "Course:[cnum -> students]",
        "Course:[cnum -> students]",
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("not implied"), "{out}");
}

#[test]
fn snapshot_roundtrip_warm_starts_every_session_subcommand() {
    let f = Fixture::new("snap-rt");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let snap = f.dir.join("course.snap").to_string_lossy().into_owned();

    let (code, out) = run(&[
        "snapshot", "--schema", &schema, "--deps", &deps, "--out", &snap,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("snapshot: wrote"), "{out}");
    assert!(std::path::Path::new(&snap).exists());

    // implies: warm-started, same verdicts as a fresh compile.
    let goal = "Course:[time, students:sid -> books]";
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("(warm start: thawed snapshot"), "{out}");
    assert!(out.contains("implied"), "{out}");
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        "Course:[time -> cnum]",
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("not implied"), "{out}");

    // prove: the certificate still verifies after a thaw.
    let (code, out) = run(&[
        "prove",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Proof of"), "{out}");

    // closure and keys warm-start too.
    let (code, out) = run(&[
        "closure",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        "--base",
        "Course",
        "--lhs",
        "cnum",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("Course:time"), "{out}");
    let (code, out) = run(&[
        "keys",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        "--relation",
        "Course",
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("{cnum}"), "{out}");

    // Mutations apply after the thaw exactly as after a compile.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        "--drop-dep",
        "Course:[cnum -> time]",
        "Course:[cnum -> time]",
    ]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("(warm start:"), "{out}");
    assert!(out.contains("not implied"), "{out}");
}

#[test]
fn snapshot_rejection_degrades_to_a_fresh_compile() {
    let f = Fixture::new("snap-degrade");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let goal = "Course:[time, students:sid -> books]";

    // A missing file: logged, then answered from a fresh compile.
    let missing = f.dir.join("nope.snap").to_string_lossy().into_owned();
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &missing,
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("rejected"), "{out}");
    assert!(out.contains("compiling fresh"), "{out}");
    assert!(out.contains("implied"), "{out}");

    // A corrupt image (flipped byte): typed rejection, correct verdict.
    let snap = f.dir.join("c.snap").to_string_lossy().into_owned();
    let (code, out) = run(&[
        "snapshot", "--schema", &schema, "--deps", &deps, "--out", &snap,
    ]);
    assert_eq!(code, 0, "{out}");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&snap, &bytes).unwrap();
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("rejected"), "{out}");
    assert!(out.contains("implied"), "{out}");

    // A stale image — frozen from a *different* Σ — is a typed mismatch,
    // never a silently wrong warm start.
    let other_deps = f.file("other.nfdd", "Course:[cnum -> time];");
    let stale = f.dir.join("stale.snap").to_string_lossy().into_owned();
    let (code, out) = run(&[
        "snapshot",
        "--schema",
        &schema,
        "--deps",
        &other_deps,
        "--out",
        &stale,
    ]);
    assert_eq!(code, 0, "{out}");
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &stale,
        "--thaw-min-bytes",
        "0",
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("rejected"), "{out}");
    assert!(out.contains("implied"), "{out}");

    // Without --out the snapshot subcommand is a usage error.
    let (code, out) = run(&["snapshot", "--schema", &schema, "--deps", &deps]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("--out is required"), "{out}");
}

/// The B17 pin: a tiny image (the 7-NFD Course schema freezes to
/// ~1.6 KiB, which B17 measured thawing at 0.48× a fresh compile) is
/// gated out of the warm start by default — the tool logs the floor and
/// compiles fresh, with identical verdicts — while `--thaw-min-bytes 0`
/// still forces the thaw and `--thaw-min-bytes` huge still degrades
/// gracefully.
#[test]
fn tiny_snapshot_is_gated_to_a_fresh_compile_by_default() {
    let f = Fixture::new("snap-floor");
    let schema = f.file("s.nfds", COURSE_SCHEMA);
    let deps = f.file("d.nfdd", COURSE_DEPS);
    let snap = f.dir.join("tiny.snap").to_string_lossy().into_owned();
    let goal = "Course:[time, students:sid -> books]";

    let (code, out) = run(&[
        "snapshot", "--schema", &schema, "--deps", &deps, "--out", &snap,
    ]);
    assert_eq!(code, 0, "{out}");
    let image_bytes = std::fs::metadata(&snap).unwrap().len();
    assert!(
        image_bytes < 16 * 1024,
        "fixture drifted: the Course image is no longer tiny ({image_bytes} bytes)"
    );

    // Default: the floor gates the thaw; same verdict, honest log line.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("warm-start floor"), "{out}");
    assert!(out.contains("compiling fresh"), "{out}");
    assert!(!out.contains("(warm start: thawed"), "{out}");
    assert!(out.contains("implied"), "{out}");

    // Explicit floor of 0: the same image thaws.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "0",
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("(warm start: thawed snapshot"), "{out}");

    // A floor larger than any image: always fresh, never an error.
    let (code, out) = run(&[
        "implies",
        "--schema",
        &schema,
        "--deps",
        &deps,
        "--snapshot",
        &snap,
        "--thaw-min-bytes",
        "999999999",
        goal,
    ]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("warm-start floor"), "{out}");
    assert!(out.contains("implied"), "{out}");
}
