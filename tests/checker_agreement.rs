//! E4/E10: the two independently derived satisfaction checkers — the
//! direct Definition 2.4 checker and the Section 2.2 logic-translation
//! evaluator — must agree on every (schema, NFD, instance) triple.

mod common;

use common::{
    random_instance_no_empty, random_instance_with_empties, random_nfd, random_schema, SchemaShape,
};
use nfd::core::check;
use nfd::logic;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn agreement_trial(seed: u64, with_empties: bool) {
    let schema = random_schema(seed, SchemaShape::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    for k in 0..6u64 {
        let Some(nfd) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let inst = if with_empties {
            random_instance_with_empties(seed * 100 + k, &schema)
        } else {
            random_instance_no_empty(seed * 100 + k, &schema)
        };
        let direct = check(&schema, &inst, &nfd).unwrap().holds;
        let formula = nfd.to_formula(&schema).unwrap();
        let by_logic = logic::eval(&inst, &formula).unwrap();
        assert_eq!(
            direct, by_logic,
            "checkers disagree (seed {seed}, k {k}) on {nfd}\nformula: {formula}\ninstance: {inst}"
        );
    }
}

#[test]
fn checkers_agree_without_empty_sets() {
    for seed in 0..150 {
        agreement_trial(seed, false);
    }
}

#[test]
fn checkers_agree_with_empty_sets() {
    for seed in 0..150 {
        agreement_trial(seed, true);
    }
}

/// Deeper schemas exercise multi-level coincidence.
#[test]
fn checkers_agree_on_deep_schemas() {
    let shape = SchemaShape {
        max_depth: 3,
        fields: (2, 3),
        set_prob: 0.6,
    };
    for seed in 0..60 {
        let schema = random_schema(seed + 10_000, shape);
        let mut rng = StdRng::seed_from_u64(seed);
        for k in 0..4u64 {
            let Some(nfd) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            let inst = random_instance_with_empties(seed * 7 + k, &schema);
            let direct = check(&schema, &inst, &nfd).unwrap().holds;
            let by_logic = logic::eval(&inst, &nfd.to_formula(&schema).unwrap()).unwrap();
            assert_eq!(direct, by_logic, "seed {seed}, k {k}, nfd {nfd}");
        }
    }
}
