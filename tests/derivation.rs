//! E5: the Section 3.1 worked derivation, reproduced as verified proofs.

mod common;

use nfd::core::engine::Engine;
use nfd::core::nfd::parse_set;
use nfd::core::{proof, rules, Nfd};
use nfd::model::Schema;
use nfd::path::Path;

fn worked() -> (Schema, Vec<Nfd>) {
    let schema =
        Schema::parse("R : { <A: {<B: {<C: int>}, E: {<F: int, G: int>}>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A:B:C, D -> A:E:F]; R:A:[B -> E:G];").unwrap();
    (schema, sigma)
}

/// The paper's eight steps, replayed manually with the rule functions —
/// each step must be exactly the conclusion the paper states.
#[test]
fn paper_proof_replayed_step_by_step() {
    let (schema, sigma) = worked();
    let p = |s: &str| Path::parse(s).unwrap();
    let nfd = |s: &str| Nfd::parse(&schema, s).unwrap();

    // 1. R:A:[B:C → E:F] by locality of nfd1.
    let s1 = rules::locality(&sigma[0]).unwrap();
    assert_eq!(s1, nfd("R:A:[B:C -> E:F]"));

    // 2. R:A:[B → E:F] by prefix on (1).
    let s2 = rules::prefix(&s1, &p("B:C")).unwrap();
    assert_eq!(s2, nfd("R:A:[B -> E:F]"));

    // 3. R:A:E:[∅ → F] by locality of (2).
    //    (In rule terms: locality at E after dismissing the single label
    //    B, i.e. the paper's "locality of (2)".)
    let s3 = rules::locality(&s2).unwrap();
    assert_eq!(s3, nfd("R:A:E:[ -> F]"));

    // 4. R:A:[E → E:F] by push-in of (3).
    let s4 = rules::push_in(&s3, 1).unwrap();
    assert_eq!(s4, nfd("R:A:[E -> E:F]"));

    // 5. R:A:E:[∅ → G] by locality of nfd2.
    let s5 = rules::locality(&sigma[1]).unwrap();
    assert_eq!(s5, nfd("R:A:E:[ -> G]"));

    // 6. R:A:[E → E:G] by push-in of (5).
    let s6 = rules::push_in(&s5, 1).unwrap();
    assert_eq!(s6, nfd("R:A:[E -> E:G]"));

    // 7. R:A:[E:F, E:G → E] by singleton with (4) and (6).
    let s7 = rules::singleton(&schema, &[s4.clone(), s6.clone()], &p("E")).unwrap();
    assert_eq!(s7, nfd("R:A:[E:F, E:G -> E]"));

    // 8. R:A:[B → E] by transitivity with (7), (2), and nfd2.
    //    Premises: B → E:F (step 2) and B → E:G (nfd2); middle: step 7.
    let s8 = rules::transitivity(&[s2.clone(), sigma[1].clone()], &s7).unwrap();
    assert_eq!(s8, nfd("R:A:[B -> E]"));
}

/// The engine finds its own proof of the same goal, and the independent
/// checker accepts it.
#[test]
fn engine_proof_verifies_and_prints() {
    let (schema, sigma) = worked();
    let engine = Engine::new(&schema, &sigma).unwrap();
    let goal = Nfd::parse(&schema, "R:A:[B -> E]").unwrap();
    let pf = proof::prove(&engine, &goal).unwrap().expect("derivable");
    proof::verify(&engine, &pf).unwrap();
    let shown = pf.to_string();
    // The rendering cites Σ and the rules used.
    assert!(shown.starts_with("Proof of R:A:[B -> E]"), "{shown}");
    assert!(shown.contains("given"), "{shown}");
    assert!(shown.contains("singleton"), "{shown}");
    // Final line concludes the goal.
    assert!(
        pf.steps.last().unwrap().conclusion == goal
            || nfd::core::simple::equivalent_form(&pf.steps.last().unwrap().conclusion, &goal)
    );
}

/// Every derivable NFD over the worked-example schema has a verifiable
/// proof; every underivable one has none. (Sweep over all single-path
/// goals from every LHS subset of a small path family.)
#[test]
fn proof_existence_matches_implication_exhaustively() {
    let (schema, sigma) = worked();
    let engine = Engine::new(&schema, &sigma).unwrap();
    let rec = schema
        .relation_type(nfd::model::Label::new("R"))
        .unwrap()
        .element_record()
        .unwrap();
    let paths = nfd::path::typing::paths_of_record(rec);
    let lhs_pool: Vec<&Path> = paths.iter().collect();
    // All LHS subsets of size ≤ 2 and all RHS paths.
    let mut combos: Vec<Vec<Path>> = vec![vec![]];
    for (i, a) in lhs_pool.iter().enumerate() {
        combos.push(vec![(*a).clone()]);
        for b in &lhs_pool[i + 1..] {
            combos.push(vec![(*a).clone(), (*b).clone()]);
        }
    }
    let base = nfd::path::RootedPath::parse("R").unwrap();
    let mut proved = 0usize;
    for lhs in &combos {
        for rhs in &paths {
            let goal = Nfd::new(base.clone(), lhs.clone(), rhs.clone()).unwrap();
            let implied = engine.implies(&goal).unwrap();
            let pf = proof::prove(&engine, &goal).unwrap();
            assert_eq!(pf.is_some(), implied, "proof existence mismatch for {goal}");
            if let Some(pf) = pf {
                proof::verify(&engine, &pf).unwrap_or_else(|e| panic!("{goal}: {e}"));
                proved += 1;
            }
        }
    }
    assert!(proved > 50, "only {proved} goals proved — sweep too small");
}
