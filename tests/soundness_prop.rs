//! E10 (soundness half of Theorem 3.1), property-tested.
//!
//! 1. Whatever the implication engine derives must hold semantically: for
//!    random Σ and goal with `Σ ⊢ goal`, no random instance may satisfy Σ
//!    and violate the goal (instances without empty sets).
//! 2. The same for the empty-set engine over instances *with* empty sets
//!    (the Section 3.2 gated rules are sound, not just the full system).
//! 3. Rule-level soundness: each of the eight rules, applied to random
//!    premises, yields a conclusion that holds on every premise-satisfying
//!    instance.

mod common;

use common::*;
use nfd::core::engine::Engine;
use nfd::core::{rules, satisfy, EmptySetPolicy, Nfd};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn engine_conclusions_hold_semantically() {
    let mut nonvacuous = 0usize;
    for seed in 0..120u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let sigma = random_sigma(&mut rng, &schema, 2);
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let engine = Engine::new(&schema, &sigma).unwrap();
        if !engine.implies(&goal).unwrap() {
            continue;
        }
        for k in 0..20u64 {
            let inst = random_instance_no_empty(seed * 1000 + k, &schema);
            if !satisfy::satisfies_all(&schema, &inst, &sigma).unwrap() {
                continue;
            }
            nonvacuous += 1;
            assert!(
                satisfy::check(&schema, &inst, &goal).unwrap().holds,
                "UNSOUND (seed {seed}, k {k}): Σ ⊢ {goal} but instance satisfies Σ \
                 and violates the goal\nΣ = {sigma:?}\nI = {inst}"
            );
        }
    }
    assert!(
        nonvacuous > 100,
        "soundness test exercised only {nonvacuous} satisfying instances — generator drifted"
    );
}

#[test]
fn empty_set_engine_is_sound_with_empty_sets() {
    let mut nonvacuous = 0usize;
    for seed in 0..120u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5555);
        let sigma = random_sigma(&mut rng, &schema, 2);
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let engine = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
        if !engine.implies(&goal).unwrap() {
            continue;
        }
        for k in 0..20u64 {
            let inst = random_instance_with_empties(seed * 1000 + k, &schema);
            if !satisfy::satisfies_all(&schema, &inst, &sigma).unwrap() {
                continue;
            }
            nonvacuous += 1;
            assert!(
                satisfy::check(&schema, &inst, &goal).unwrap().holds,
                "UNSOUND with empty sets (seed {seed}, k {k}): {goal}\nΣ = {sigma:?}\nI = {inst}"
            );
        }
    }
    assert!(nonvacuous > 100, "only {nonvacuous} satisfying instances");
}

/// The transitivity failure of Example 3.2 must NOT be reproducible
/// through the gated engine: hunt for a counterexample to the pessimistic
/// engine using instances with empty sets and report if one exists.
#[test]
fn strict_engine_is_unsound_with_empty_sets_but_gated_engine_is_not() {
    // The fixed Example 3.2 witness: strict transitivity concludes A → D,
    // the instance with empty B satisfies Σ and violates it.
    let schema =
        nfd::model::Schema::parse("R : { <A: int, B: {<C: int>}, D: int, E: int> };").unwrap();
    let sigma = nfd::core::nfd::parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();
    let inst = nfd::model::Instance::parse(
        &schema,
        "R = { <A: 1, B: {}, D: 2, E: 3>,
               <A: 1, B: {}, D: 3, E: 4>,
               <A: 2, B: {<C: 3>}, D: 4, E: 5> };",
    )
    .unwrap();
    // The strict engine derives the goal (sound only without empty sets)…
    let strict = Engine::new(&schema, &sigma).unwrap();
    assert!(strict.implies(&goal).unwrap());
    // …and the instance is exactly the witness that this is unsound once
    // empty sets exist:
    assert!(satisfy::satisfies_all(&schema, &inst, &sigma).unwrap());
    assert!(!satisfy::check(&schema, &inst, &goal).unwrap().holds);
    // The gated engine refuses the derivation.
    let gated = Engine::with_policy(&schema, &sigma, EmptySetPolicy::pessimistic()).unwrap();
    assert!(!gated.implies(&goal).unwrap());
}

/// Rule-level soundness: conclusions of single rule applications hold on
/// all premise-satisfying instances (without empty sets).
#[test]
fn individual_rules_are_sound() {
    let mut checked = 0usize;
    for seed in 0..100u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1234);
        let Some(premise) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        // Candidate conclusions from each unary rule.
        let mut conclusions: Vec<(&str, Nfd)> = Vec::new();
        if let Ok(c) = rules::locality(&premise) {
            conclusions.push(("locality", c));
        }
        for p in premise.lhs() {
            if let Ok(c) = rules::prefix(&premise, p) {
                conclusions.push(("prefix", c));
            }
        }
        for x in premise.rhs.prefixes() {
            if let Ok(c) = rules::full_locality(&premise, &x) {
                conclusions.push(("full-locality", c));
            }
        }
        for k in 1..=premise.base.path.len() {
            if let Ok(c) = rules::push_in(&premise, k) {
                conclusions.push(("push-in", c));
            }
        }
        for y in premise.lhs() {
            if let Ok(c) = rules::pull_out(&premise, y) {
                conclusions.push(("pull-out", c));
            }
        }
        if conclusions.is_empty() {
            continue;
        }
        for k in 0..10u64 {
            let inst = random_instance_no_empty(seed * 77 + k, &schema);
            if !satisfy::check(&schema, &inst, &premise).unwrap().holds {
                continue;
            }
            for (rule, conclusion) in &conclusions {
                checked += 1;
                assert!(
                    satisfy::check(&schema, &inst, conclusion).unwrap().holds,
                    "rule {rule} UNSOUND (seed {seed}, k {k}):\npremise {premise}\n\
                     conclusion {conclusion}\ninstance {inst}"
                );
            }
        }
    }
    assert!(checked > 200, "only {checked} rule applications exercised");
}

/// Augmentation and reflexivity are sound even with empty sets.
#[test]
fn reflexivity_and_augmentation_sound_with_empties() {
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let Some(premise) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let Some(extra) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        if extra.base != premise.base {
            continue;
        }
        let augmented = rules::augmentation(&premise, extra.lhs().iter().cloned()).unwrap();
        for k in 0..10u64 {
            let inst = random_instance_with_empties(seed * 31 + k, &schema);
            if satisfy::check(&schema, &inst, &premise).unwrap().holds {
                assert!(
                    satisfy::check(&schema, &inst, &augmented).unwrap().holds,
                    "augmentation unsound (seed {seed}, k {k})"
                );
            }
            if premise.is_trivial() {
                assert!(satisfy::check(&schema, &inst, &premise).unwrap().holds);
            }
        }
    }
}
