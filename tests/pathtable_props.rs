//! The compiled path-table IR against the ground truth it compiles.
//!
//! `PathTable` flattens the prefix (Definition 2.2) and follows
//! (Definition 3.2) relations of `Paths(SC)` into bitset matrices that
//! every decision procedure now consumes. These properties pin the
//! matrices to the original `Path`-level predicates on every pair of
//! paths of random schemas: an error here would silently corrupt every
//! verdict downstream.

mod common;

use common::{only_relation, random_schema, SchemaShape};
use nfd::model::Schema;
use nfd::path::typing::paths_of_record;
use nfd::path::{PathId, PathTable};

fn check_table(seed: u64, schema: &Schema) {
    let relation = only_relation(schema);
    let table = PathTable::for_relation(schema, relation).unwrap();
    let rec = schema
        .relation_type(relation)
        .unwrap()
        .element_record()
        .unwrap();
    let all = paths_of_record(rec);
    assert_eq!(
        table.len(),
        all.len(),
        "seed {seed}: the table interns exactly Paths(SC)"
    );
    for p in &all {
        let id = table.id_of(p).expect("every schema path is interned");
        assert_eq!(table.path(id), p, "seed {seed}: id_of/path round-trip");
    }

    let n = table.len() as PathId;
    for a in 0..n {
        let pa = table.path(a);
        // The parent pointer is the one-label-shorter prefix (None for
        // single-label paths).
        let expected_parent =
            (0..n).find(|&q| table.path(q).len() + 1 == pa.len() && table.path(q).is_prefix_of(pa));
        assert_eq!(
            table.parent(a),
            expected_parent,
            "seed {seed}: parent of {pa}"
        );
        // Ancestors are the proper prefixes, ascending by length.
        let ancestors = table.ancestors(a);
        let expected: Vec<PathId> = {
            let mut v: Vec<PathId> = (0..n)
                .filter(|&q| table.path(q).is_proper_prefix_of(pa))
                .collect();
            v.sort_by_key(|&q| table.path(q).len());
            v
        };
        assert_eq!(ancestors, expected, "seed {seed}: ancestors of {pa}");

        for b in 0..n {
            let pb = table.path(b);
            assert_eq!(
                table.is_prefix(a, b),
                pa.is_prefix_of(pb),
                "seed {seed}: is_prefix({pa}, {pb})"
            );
            assert_eq!(
                table.is_proper_prefix(a, b),
                pa.is_proper_prefix_of(pb),
                "seed {seed}: is_proper_prefix({pa}, {pb})"
            );
            assert_eq!(
                table.follows(a, b),
                pa.follows(pb),
                "seed {seed}: follows({pa}, {pb})"
            );
            // The three bitset matrices say the same thing as the scalar
            // accessors.
            assert_eq!(
                table.prefixes_of(b).contains(a),
                pa.is_prefix_of(pb),
                "seed {seed}: prefixes_of({pb}) ∋ {pa}"
            );
            assert_eq!(
                table.extensions_of(a).contains(b),
                pa.is_proper_prefix_of(pb),
                "seed {seed}: extensions_of({pa}) ∋ {pb}"
            );
            assert_eq!(
                table.followers_of(b).contains(a),
                pa.follows(pb),
                "seed {seed}: followers_of({pb}) ∋ {pa}"
            );
            // Children are exactly the paths whose parent is `a`.
            assert_eq!(
                table.children(a).contains(&b),
                table.parent(b) == Some(a),
                "seed {seed}: children({pa}) ∋ {pb}"
            );
        }
    }
}

#[test]
fn bitsets_agree_with_path_predicates_flat() {
    for seed in 0..60 {
        let schema = random_schema(
            seed,
            SchemaShape {
                max_depth: 0,
                fields: (2, 5),
                set_prob: 0.0,
            },
        );
        check_table(seed, &schema);
    }
}

#[test]
fn bitsets_agree_with_path_predicates_nested() {
    for seed in 0..60 {
        let schema = random_schema(
            seed,
            SchemaShape {
                max_depth: 2,
                fields: (2, 4),
                set_prob: 0.5,
            },
        );
        check_table(seed, &schema);
    }
}

#[test]
fn bitsets_agree_with_path_predicates_deep() {
    for seed in 0..30 {
        let schema = random_schema(
            seed,
            SchemaShape {
                max_depth: 3,
                fields: (1, 3),
                set_prob: 0.7,
            },
        );
        check_table(seed, &schema);
    }
}
