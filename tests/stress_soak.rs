//! Seeded randomized soak under tight budgets: for many random schemas
//! and dependency sets, governed queries must terminate promptly with one
//! of the three verdicts — and whenever a budgeted run answers, the
//! answer must agree with the unbudgeted truth. The CI stress job runs
//! this suite under `timeout` as a hang detector.

mod common;

use common::*;
use nfd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Mixed budget menu: starvation, tiny, moderate, deadline-only.
fn budget_for(round: u64) -> Budget {
    match round % 4 {
        0 => Budget::limited(0),
        1 => Budget::limited(round % 17),
        2 => Budget::limited(200),
        _ => Budget::unlimited().with_timeout_ms(50),
    }
}

#[test]
fn randomized_schemas_under_tight_budgets_stay_trichotomous() {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut rounds = 0u64;
    for seed in 0..400u64 {
        if Instant::now() > deadline {
            break; // soak is time-boxed; coverage grows with machine speed
        }
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50AC);
        let n_deps = rng.gen_range(1..5);
        let sigma = random_sigma(&mut rng, &schema, n_deps);
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let Ok(session) = Session::new(&schema, &sigma) else {
            continue; // standard-budget build exhaustion is a legal outcome
        };
        let truth = session.implies(&goal).unwrap();

        let budget = budget_for(seed);
        let start = Instant::now();
        let decision = session.implies_with(&goal, &budget).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "seed {seed}: governed query ran away"
        );
        if let Some(answer) = decision.verdict.as_bool() {
            assert_eq!(
                answer, truth,
                "seed {seed}: budgeted cascade contradicts unbudgeted verdict on {goal}"
            );
        }
        rounds += 1;
    }
    assert!(rounds > 0, "soak made no progress");
}

#[test]
fn randomized_schemas_with_deadlines_never_panic() {
    let deadline = Instant::now() + Duration::from_secs(10);
    for seed in 400..600u64 {
        if Instant::now() > deadline {
            break;
        }
        let schema = random_schema(
            seed,
            SchemaShape {
                max_depth: 3,
                fields: (2, 5),
                set_prob: 0.6,
            },
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let n_deps = rng.gen_range(1..6);
        let sigma = random_sigma(&mut rng, &schema, n_deps);
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        // Drive all three deciders straight through the trait under a
        // millisecond-scale deadline — exhaustion and errors are both
        // fine; panics and hangs are not.
        let budget = Budget::limited(seed % 64).with_timeout_ms(5);
        for d in nfd::session::all_deciders() {
            let _ = d.decide(&schema, &sigma, &goal, &budget);
        }
    }
}
