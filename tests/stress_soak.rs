//! Seeded randomized soak under tight budgets: for many random schemas
//! and dependency sets, governed queries must terminate promptly with one
//! of the three verdicts — and whenever a budgeted run answers, the
//! answer must agree with the unbudgeted truth. The CI stress job runs
//! this suite under `timeout` as a hang detector.
//!
//! Each soak phase derives its seeds through [`phase_seed`], a bit mixer
//! keyed by the phase number, so no phase ever replays another phase's
//! corpus — `soak_phases_draw_distinct_corpora` locks that in.

mod common;

use common::*;
use nfd::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Per-phase seed derivation: a splitmix64-style mixer over
/// `(phase, index)`, so every phase draws an independent stream and a new
/// phase can never replay an old one's inputs by reusing raw indices.
fn phase_seed(phase: u64, index: u64) -> u64 {
    let mut z = phase
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixed budget menu: starvation, tiny, moderate, deadline-only.
fn budget_for(round: u64) -> Budget {
    match round % 4 {
        0 => Budget::limited(0),
        1 => Budget::limited(round % 17),
        2 => Budget::limited(200),
        _ => Budget::unlimited().with_timeout_ms(50),
    }
}

/// The random inputs one soak round is built from.
fn corpus_entry(phase: u64, index: u64, shape: SchemaShape) -> (Schema, Vec<Nfd>, Option<Nfd>) {
    let seed = phase_seed(phase, index);
    let schema = random_schema(seed, shape);
    let mut rng = StdRng::seed_from_u64(phase_seed(phase, index ^ 0x5EED));
    let n_deps = rng.gen_range(1..6);
    let sigma = random_sigma(&mut rng, &schema, n_deps);
    let goal = random_nfd(&mut rng, &schema);
    (schema, sigma, goal)
}

#[test]
fn soak_phases_draw_distinct_corpora() {
    // At every index the two phases must have drawn different problems;
    // a replay (the bug this guards against: both phases feeding the raw
    // index into the generators) would make them identical.
    let mut identical = 0usize;
    for index in 0..32u64 {
        let a = corpus_entry(1, index, SchemaShape::default());
        let b = corpus_entry(2, index, SchemaShape::default());
        if a == b {
            identical += 1;
        }
    }
    assert_eq!(
        identical, 0,
        "{identical}/32 rounds were replayed verbatim across phases"
    );
}

#[test]
fn randomized_schemas_under_tight_budgets_stay_trichotomous() {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut rounds = 0u64;
    for index in 0..400u64 {
        if Instant::now() > deadline {
            break; // soak is time-boxed; coverage grows with machine speed
        }
        let (schema, sigma, goal) = corpus_entry(1, index, SchemaShape::default());
        let Some(goal) = goal else {
            continue;
        };
        let Ok(session) = Session::new(&schema, &sigma) else {
            continue; // standard-budget build exhaustion is a legal outcome
        };
        let truth = session.implies(&goal).unwrap();

        let budget = budget_for(index);
        let start = Instant::now();
        let decision = session.implies_with(&goal, &budget).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "round {index}: governed query ran away"
        );
        if let Some(answer) = decision.verdict.as_bool() {
            assert_eq!(
                answer, truth,
                "round {index}: budgeted cascade contradicts unbudgeted verdict on {goal}"
            );
        }
        rounds += 1;
    }
    assert!(rounds > 0, "soak made no progress");
}

#[test]
fn randomized_schemas_with_deadlines_never_panic() {
    let deadline = Instant::now() + Duration::from_secs(10);
    for index in 0..200u64 {
        if Instant::now() > deadline {
            break;
        }
        let shape = SchemaShape {
            max_depth: 3,
            fields: (2, 5),
            set_prob: 0.6,
        };
        let (schema, sigma, goal) = corpus_entry(2, index, shape);
        let Some(goal) = goal else {
            continue;
        };
        // Drive all three deciders straight through the trait under a
        // millisecond-scale deadline — exhaustion and errors are both
        // fine; panics and hangs are not.
        let budget = Budget::limited(index % 64).with_timeout_ms(5);
        for d in nfd::session::all_deciders() {
            let _ = d.decide(&schema, &sigma, &goal, &budget);
        }
    }
}

/// Phase 3: mutation soak. Interleaved Σ adds/removes and queries on one
/// session under the mixed budget menu. The contract under exhaustion is
/// atomicity: a mutation either fully applies or fails typed
/// (`Exhausted`/`Internal`) leaving Σ exactly where it was — so the
/// session's answers always agree with the unbudgeted truth over the
/// mirror Σ, never a stale or half-applied hybrid.
#[test]
fn mutation_soak_under_tight_budgets_never_goes_stale() {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut mutations = 0u64;
    let mut exhausted = 0u64;
    for index in 0..200u64 {
        if Instant::now() > deadline {
            break;
        }
        let (schema, sigma, _) = corpus_entry(3, index, SchemaShape::default());
        let budget = budget_for(index);
        let Ok(mut session) =
            Session::with_budget(&schema, &sigma, EmptySetPolicy::Forbidden, budget)
        else {
            continue; // tight-budget build exhaustion is a legal outcome
        };
        let mut mirror = sigma.clone();
        let mut rng = StdRng::seed_from_u64(phase_seed(3, index ^ 0xA11));

        for step in 0..6u64 {
            // One mutation under the session's (possibly starved) budget.
            if mirror.is_empty() || rng.gen_bool(0.5) {
                if let Some(dep) = random_nfd(&mut rng, &schema) {
                    match session.add_deps(std::slice::from_ref(&dep)) {
                        Ok(_) => {
                            mirror.push(dep);
                            mutations += 1;
                        }
                        Err(CoreError::Exhausted(_)) | Err(CoreError::Internal(_)) => {
                            exhausted += 1; // rolled back; mirror unchanged
                        }
                        Err(e) => panic!("round {index} step {step}: untyped add failure: {e}"),
                    }
                }
            } else {
                let dep = mirror[rng.gen_range(0..mirror.len())].clone();
                match session.remove_deps(std::slice::from_ref(&dep)) {
                    Ok(_) => {
                        let pos = mirror.iter().position(|n| n == &dep).unwrap();
                        mirror.remove(pos);
                        mutations += 1;
                    }
                    Err(CoreError::Exhausted(_)) | Err(CoreError::Internal(_)) => {
                        exhausted += 1; // mid-retraction exhaustion rolls back
                    }
                    Err(e) => panic!("round {index} step {step}: untyped remove failure: {e}"),
                }
            }
            // Atomicity: the session's Σ tracks the mirror exactly.
            assert_eq!(
                session.engine().sigma,
                mirror,
                "round {index} step {step}: Σ diverged from the mirror"
            );

            // A query (its own ample budget) must agree with the
            // unbudgeted truth over the mirror Σ — never stale.
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            let Ok(truth_session) = Session::new(&schema, &mirror) else {
                continue;
            };
            let truth = truth_session.implies(&goal).unwrap();
            let decision = session.implies_with(&goal, &Budget::standard()).unwrap();
            if let Some(answer) = decision.verdict.as_bool() {
                assert_eq!(
                    answer, truth,
                    "round {index} step {step}: stale answer after mutation on {goal}"
                );
            }
        }
    }
    assert!(
        mutations > 0,
        "mutation soak made no progress ({exhausted} exhausted)"
    );
}

/// Phase 4: persistence soak. One session per round serves interleaved
/// freeze/encode/decode/thaw cycles, Σ mutations and queries under the
/// mixed budget menu, with a random single-bit corruption injected into
/// half the images. The contract mirrors phase 3's atomicity, lifted to
/// persistence: an accepted thaw replaces the session bit-identically,
/// and a *rejected* thaw (corrupt image, starved replay budget) leaves
/// the serving session exactly as it was — answers always agree with
/// the unbudgeted truth over the mirror Σ, never a stale or hybrid
/// session resurrected from a torn image.
#[test]
fn snapshot_soak_interleaves_freeze_thaw_and_mutation() {
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut thaws = 0u64;
    let mut rejections = 0u64;
    let mut mutations = 0u64;
    for index in 0..120u64 {
        if Instant::now() > deadline {
            break;
        }
        let (schema, sigma, _) = corpus_entry(4, index, SchemaShape::default());
        let budget = budget_for(index);
        let Ok(mut session) =
            Session::with_budget(&schema, &sigma, EmptySetPolicy::Forbidden, budget.clone())
        else {
            continue; // tight-budget build exhaustion is a legal outcome
        };
        let mut mirror = sigma.clone();
        let mut rng = StdRng::seed_from_u64(phase_seed(4, index ^ 0xF00D));

        for step in 0..6u64 {
            match rng.gen_range(0..3) {
                // Σ mutation (same atomicity contract as phase 3).
                0 => {
                    if let Some(dep) = random_nfd(&mut rng, &schema) {
                        match session.add_deps(std::slice::from_ref(&dep)) {
                            Ok(_) => {
                                mirror.push(dep);
                                mutations += 1;
                            }
                            Err(CoreError::Exhausted(_)) | Err(CoreError::Internal(_)) => {}
                            Err(e) => {
                                panic!("round {index} step {step}: untyped add failure: {e}")
                            }
                        }
                    }
                }
                // Freeze → encode → (maybe corrupt) → decode → thaw.
                1 => {
                    let image = session.freeze();
                    let mut bytes = nfd::snap::encode(&image);
                    if rng.gen_bool(0.5) && !bytes.is_empty() {
                        let at = rng.gen_range(0..bytes.len());
                        bytes[at] ^= 1u8 << rng.gen_range(0..8);
                    }
                    let thawed = nfd::snap::decode(&bytes).and_then(|decoded| {
                        Session::thaw(
                            &schema,
                            &mirror,
                            EmptySetPolicy::Forbidden,
                            budget.clone(),
                            nfd_core::TierPreference::Auto,
                            &decoded,
                        )
                    });
                    match thawed {
                        Ok(warm) => {
                            // An accepted thaw replaces the session; it
                            // must carry the exact mirror Σ.
                            session = warm;
                            thaws += 1;
                        }
                        Err(_) => {
                            // Typed rejection: the old session keeps
                            // serving, untouched.
                            rejections += 1;
                        }
                    }
                }
                // Plain query step.
                _ => {}
            }
            assert_eq!(
                session.engine().sigma,
                mirror,
                "round {index} step {step}: Σ diverged after a freeze/thaw cycle"
            );
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            let Ok(truth_session) = Session::new(&schema, &mirror) else {
                continue;
            };
            let truth = truth_session.implies(&goal).unwrap();
            let decision = session.implies_with(&goal, &Budget::standard()).unwrap();
            if let Some(answer) = decision.verdict.as_bool() {
                assert_eq!(
                    answer, truth,
                    "round {index} step {step}: stale answer after thaw on {goal}"
                );
            }
        }
    }
    assert!(
        thaws > 0 && mutations > 0,
        "snapshot soak made no progress (thaws={thaws} mutations={mutations} rejections={rejections})"
    );
}
