//! Adversarial proof checking: the verifier must reject systematically
//! mutated certificates. A verifier that accepts a corrupted proof is as
//! bad as an unsound engine, so each mutation class is exercised over
//! randomized derivations.

mod common;

use common::*;
use nfd::core::engine::Engine;
use nfd::core::proof::{self, Justification, Proof};
use nfd::core::rules::Rule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Harvest (engine, proof) pairs from random implication problems.
fn sample_proofs(
    seeds: std::ops::Range<u64>,
) -> Vec<(nfd::model::Schema, Vec<nfd::core::Nfd>, Proof)> {
    let mut out = Vec::new();
    for seed in seeds {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
        let sigma = random_sigma(&mut rng, &schema, 3);
        let engine = Engine::new(&schema, &sigma).unwrap();
        for _ in 0..6 {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            if goal.is_trivial() {
                continue;
            }
            if let Some(pf) = proof::prove(&engine, &goal).unwrap() {
                if pf.steps.len() >= 2 {
                    out.push((schema.clone(), sigma.clone(), pf));
                    break;
                }
            }
        }
    }
    out
}

fn verify(schema: &nfd::model::Schema, sigma: &[nfd::core::Nfd], pf: &Proof) -> bool {
    let engine = Engine::new(schema, sigma).unwrap();
    proof::verify(&engine, pf).is_ok()
}

#[test]
fn pristine_proofs_verify() {
    let samples = sample_proofs(0..80);
    assert!(
        samples.len() > 25,
        "only {} proofs harvested",
        samples.len()
    );
    for (schema, sigma, pf) in &samples {
        assert!(verify(schema, sigma, pf), "pristine proof rejected:\n{pf}");
    }
}

#[test]
fn swapped_conclusions_rejected() {
    for (schema, sigma, pf) in sample_proofs(100..160) {
        // Swap the conclusions of two distinct steps; at least one step's
        // justification must now fail (conclusions are distinct by the
        // builder's dedup).
        let n = pf.steps.len();
        let mut mutated = pf.clone();
        mutated.steps.swap(0, n - 1);
        // Keep premise indices as they are: the final step now sits first,
        // citing itself or later steps, or justifies the wrong conclusion.
        assert!(
            !verify(&schema, &sigma, &mutated),
            "verifier accepted swapped conclusions:\n{pf}"
        );
    }
}

#[test]
fn wrong_rule_names_rejected() {
    let mut rejected = 0usize;
    let mut total = 0usize;
    for (schema, sigma, pf) in sample_proofs(200..320) {
        // Relabel every Rule justification with a different rule. For at
        // least one step this must break (a derivation whose every step is
        // simultaneously valid under a rotated rule name would be
        // remarkable; we require overall rejection).
        let mut mutated = pf.clone();
        let mut changed = false;
        for step in &mut mutated.steps {
            if let Justification::Rule { rule, .. } = &mut step.justification {
                *rule = match *rule {
                    Rule::Transitivity => Rule::Prefix,
                    Rule::Prefix => Rule::FullLocality,
                    Rule::FullLocality => Rule::Transitivity,
                    Rule::PushIn => Rule::PullOut,
                    Rule::PullOut => Rule::PushIn,
                    Rule::Singleton => Rule::Prefix,
                    Rule::Augmentation => Rule::Prefix,
                    other => other,
                };
                changed = true;
            }
        }
        if !changed {
            continue;
        }
        total += 1;
        if !verify(&schema, &sigma, &mutated) {
            rejected += 1;
        }
    }
    assert!(total > 12, "only {total} mutations tried");
    assert_eq!(rejected, total, "some relabeled proofs were accepted");
}

#[test]
fn forged_sigma_citations_rejected() {
    for (schema, sigma, pf) in sample_proofs(300..360) {
        // Point a Given citation at a different Σ member (or out of
        // range). Unless the two members are equal, verification fails.
        let mut mutated = pf.clone();
        let mut changed = false;
        for step in &mut mutated.steps {
            if let Justification::Given(k) = &mut step.justification {
                let forged = (*k + 1) % (sigma.len() + 1);
                if sigma.get(forged) != sigma.get(*k) {
                    *k = forged;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            continue;
        }
        assert!(
            !verify(&schema, &sigma, &mutated),
            "verifier accepted a forged Σ citation"
        );
    }
}

#[test]
fn dangling_premises_rejected() {
    let mut rng = StdRng::seed_from_u64(7);
    for (schema, sigma, pf) in sample_proofs(400..440) {
        let mut mutated = pf.clone();
        // Make some premise point out of range.
        let n = mutated.steps.len();
        let idx = rng.gen_range(0..n);
        if let Justification::Rule { premises, .. } = &mut mutated.steps[idx].justification {
            if premises.is_empty() {
                continue;
            }
            premises[0] = n; // one past the end
        } else {
            continue;
        }
        // Out-of-range premise must at minimum not panic, and must reject.
        let engine = Engine::new(&schema, &sigma).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            proof::verify(&engine, &mutated).is_ok()
        }));
        match result {
            Ok(accepted) => assert!(!accepted, "accepted a dangling premise"),
            Err(_) => panic!("verifier panicked on out-of-range premise index"),
        }
    }
}

#[test]
fn truncated_proofs_rejected_or_weaker() {
    for (schema, sigma, pf) in sample_proofs(500..540) {
        if pf.steps.len() < 2 {
            continue;
        }
        let mut mutated = pf.clone();
        mutated.steps.pop();
        // A truncated proof whose new last step still concludes the goal
        // (up to push-in/pull-out form) is legitimately valid — e.g.
        // dropping a final pull-out presentation step. Skip those.
        if nfd::core::simple::equivalent_form(&mutated.steps.last().unwrap().conclusion, &pf.goal) {
            continue;
        }
        assert!(
            !verify(&schema, &sigma, &mutated),
            "verifier accepted a truncated proof:\n{pf}"
        );
    }
}
