//! E10 / §4: the nested tableau chase and the axiomatic saturation engine
//! are two unrelated decision procedures for the same problem; they must
//! return identical verdicts.

mod common;

use common::*;
use nfd::chase;
use nfd::core::engine::Engine;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn differential_trial(seed: u64, shape: SchemaShape, goals: usize) {
    let schema = random_schema(seed, shape);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let sigma = random_sigma(&mut rng, &schema, 2);
    let engine = Engine::new(&schema, &sigma).unwrap();
    for _ in 0..goals {
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let by_axioms = engine.implies(&goal).unwrap();
        let by_chase = chase::implies_by_chase(&schema, &sigma, &goal).unwrap();
        assert_eq!(
            by_axioms, by_chase,
            "verdicts differ (seed {seed}) for {goal}\nΣ = {sigma:?}"
        );
    }
}

#[test]
fn chase_agrees_on_flat_schemas() {
    for seed in 0..200 {
        differential_trial(
            seed,
            SchemaShape {
                max_depth: 0,
                fields: (2, 4),
                set_prob: 0.0,
            },
            4,
        );
    }
}

#[test]
fn chase_agrees_on_shallow_nested_schemas() {
    for seed in 0..200 {
        differential_trial(
            seed + 1_000,
            SchemaShape {
                max_depth: 1,
                fields: (2, 3),
                set_prob: 0.5,
            },
            4,
        );
    }
}

#[test]
fn chase_agrees_on_deeper_schemas() {
    for seed in 0..80 {
        differential_trial(
            seed + 2_000,
            SchemaShape {
                max_depth: 2,
                fields: (2, 2),
                set_prob: 0.5,
            },
            3,
        );
    }
}
