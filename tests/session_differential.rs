//! The compiled-IR [`Session`] against everything else.
//!
//! The session front end compiles `(Schema, Σ)` once and serves every
//! query from the cached saturation. This suite pins it to
//!
//! 1. the paper artifacts the repository reproduces (E1′ inference, E5
//!    proofs, E8/E9 closures, E11 set observations, E12 empty-set
//!    refusals) — the verdicts must be *exactly* the printed ones;
//! 2. the nested tableau chase on randomized schemas — an independent
//!    algorithm that must agree goal by goal; and
//! 3. the full [`Decider`] panel (saturation / chase / logic-eval) on
//!    randomized schemas — three unrelated procedures, one verdict.

mod common;

use common::*;
use nfd::chase;
use nfd::core::engine::Engine;
use nfd::core::nfd::parse_set;
use nfd::core::{EmptySetPolicy, Nfd};
use nfd::model::{Label, Schema};
use nfd::path::{Path, RootedPath};
use nfd::session::{all_deciders, Session};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E1′ + E5: the Section 1 motivating inference through the session,
/// with a verified certificate, plus the refusal the paper contrasts it
/// with.
#[test]
fn session_reproduces_intro_inference_and_proof() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let session = Session::new(&schema, &sigma).unwrap();

    assert!(session
        .implies_text("Course:[time, students:sid -> books]")
        .unwrap());
    assert!(!session
        .implies_text("Course:[students:sid -> books]")
        .unwrap());

    let goal = Nfd::parse(&schema, "Course:[time, students:sid -> books]").unwrap();
    let pf = session.prove(&goal).unwrap().expect("implied ⇒ provable");
    session.verify(&pf).unwrap();
    assert!(
        session
            .prove(&Nfd::parse(&schema, "Course:[students:sid -> books]").unwrap())
            .unwrap()
            .is_none(),
        "refused goals have no certificate"
    );
}

/// E8: Example A.1's closure through the session, exactly as printed.
#[test]
fn session_reproduces_example_a1_closure() {
    let schema = Schema::parse(
        "R : { <A: int, B: {<C: int>}, D: int, E: {<F: int, G: int>},
               H: {<J: int, L: int>}, I: int, M: {<N: int, O: int>}> };",
    )
    .unwrap();
    let sigma = parse_set(
        &schema,
        "R:[A -> B:C]; R:[B:C -> D]; R:[D -> E:F];
         R:[A -> E:G]; R:[B:C -> H]; R:[I -> H:J];",
    )
    .unwrap();
    let session = Session::new(&schema, &sigma).unwrap();
    let closure = session
        .closure(
            &RootedPath::parse("R").unwrap(),
            &[Path::parse("B").unwrap()],
        )
        .unwrap();
    let shown: Vec<String> = closure.iter().map(|p| p.to_string()).collect();
    assert_eq!(shown, ["R:B", "R:D", "R:H", "R:B:C", "R:E:F", "R:H:J"]);
}

/// E9: Example A.2's closure (deep nesting, set-valued RHS) through the
/// session, exactly as printed.
#[test]
fn session_reproduces_example_a2_closure() {
    let schema =
        Schema::parse("R : { <A: {<B: {<C: int, D: int, E: {<F: int, G: int>}>}>}, H: int> };")
            .unwrap();
    let sigma = parse_set(
        &schema,
        "R:[A:B:C -> A:B]; R:[A:B:C -> A:B:E:F]; R:[H -> A:B:D];",
    )
    .unwrap();
    let session = Session::new(&schema, &sigma).unwrap();
    let closure = session
        .closure(
            &RootedPath::parse("R").unwrap(),
            &[Path::parse("A:B:C").unwrap()],
        )
        .unwrap();
    let shown: Vec<String> = closure.iter().map(|p| p.to_string()).collect();
    assert_eq!(shown, ["R:A:B", "R:A:B:C", "R:A:B:D", "R:A:B:E:F"]);
}

/// E11: the Section 2.1 set observations as session inferences — the
/// singleton rule fires for `R:[D → A:B], R:[D → A:C] ⊢ R:[D → A]`.
#[test]
fn session_reproduces_singleton_inference() {
    let schema = Schema::parse("R : {<A: {<B: int, C: int>}, D: int>};").unwrap();
    let sigma = parse_set(&schema, "R:[D -> A:B]; R:[D -> A:C];").unwrap();
    let session = Session::new(&schema, &sigma).unwrap();
    assert!(session.implies_text("R:[D -> A]").unwrap());
}

/// E12: the Section 3.2 empty-set refusals under `reconfigure` — the
/// strict-regime derivations exist, the pessimistic ones are refused,
/// and a NON-NULL annotation restores them. The pessimistic session
/// reuses the strict one's compiled tables.
#[test]
fn session_reproduces_empty_set_refusals() {
    let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let strict = Session::new(&schema, &sigma).unwrap();
    assert!(strict.implies_text("R:[A -> D]").unwrap());
    assert!(strict.implies_text("R:[A -> B]").unwrap());

    let pessimistic = strict.reconfigure(EmptySetPolicy::pessimistic()).unwrap();
    assert!(!pessimistic.implies_text("R:[A -> D]").unwrap());
    assert!(!pessimistic.implies_text("R:[A -> B]").unwrap());

    let annotated = strict
        .reconfigure(EmptySetPolicy::non_empty([
            RootedPath::parse("R:B").unwrap()
        ]))
        .unwrap();
    assert!(annotated.implies_text("R:[A -> D]").unwrap());
    assert!(annotated.implies_text("R:[A -> B]").unwrap());
}

/// One session serving many random goals must agree with the chase (an
/// unrelated algorithm) and with a fresh engine per goal (the
/// amortization must not change verdicts).
fn session_vs_chase_trial(seed: u64, shape: SchemaShape, goals: usize) {
    let schema = random_schema(seed, shape);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E55);
    let sigma = random_sigma(&mut rng, &schema, 2);
    let session = Session::new(&schema, &sigma).unwrap();
    for _ in 0..goals {
        let Some(goal) = random_nfd(&mut rng, &schema) else {
            continue;
        };
        let by_session = session.implies(&goal).unwrap();
        let by_chase = chase::implies_by_chase(&schema, &sigma, &goal).unwrap();
        assert_eq!(
            by_session, by_chase,
            "session vs chase differ (seed {seed}) for {goal}\nΣ = {sigma:?}"
        );
        let fresh = Engine::new(&schema, &sigma).unwrap();
        assert_eq!(
            by_session,
            fresh.implies(&goal).unwrap(),
            "session vs fresh engine differ (seed {seed}) for {goal}"
        );
    }
}

#[test]
fn session_agrees_with_chase_on_flat_schemas() {
    for seed in 0..120 {
        session_vs_chase_trial(
            seed,
            SchemaShape {
                max_depth: 0,
                fields: (2, 4),
                set_prob: 0.0,
            },
            4,
        );
    }
}

#[test]
fn session_agrees_with_chase_on_nested_schemas() {
    for seed in 0..120 {
        session_vs_chase_trial(
            seed,
            SchemaShape {
                max_depth: 2,
                fields: (2, 3),
                set_prob: 0.5,
            },
            4,
        );
    }
}

/// All three deciders — saturation, chase, logic-eval (Appendix A
/// construction + Section 2.2 formula evaluation) — on random schemas.
#[test]
fn decider_panel_agrees_on_random_schemas() {
    let deciders = all_deciders();
    for seed in 0..40 {
        let schema = random_schema(
            seed,
            SchemaShape {
                max_depth: 1,
                fields: (2, 3),
                set_prob: 0.4,
            },
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEC1);
        let sigma = random_sigma(&mut rng, &schema, 2);
        for _ in 0..3 {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            let verdicts: Vec<(&str, bool)> = deciders
                .iter()
                .map(|d| {
                    (
                        d.name(),
                        d.implies(&schema, &sigma, &goal)
                            .unwrap_or_else(|e| panic!("seed {seed}: {e} on {goal}")),
                    )
                })
                .collect();
            assert!(
                verdicts.windows(2).all(|w| w[0].1 == w[1].1),
                "deciders disagree (seed {seed}) on {goal}: {verdicts:?}\nΣ = {sigma:?}"
            );
        }
    }
}

/// The session's candidate-key search must match the classical notion on
/// the worked example.
#[test]
fn session_keys_on_the_worked_example() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let keys = session.candidate_keys(Label::new("Course"), 2).unwrap();
    assert!(
        keys.iter()
            .any(|k| k.len() == 1 && k[0].to_string() == "cnum"),
        "cnum is a key: {keys:?}"
    );
}

/// [`Session::reconfigure`] discards the closure cache, keys memo and
/// tier state, and signals it through `Decision.caches_invalidated` —
/// which must latch on the rebuilt session exactly once, including when
/// the first decision after the rebuild goes through the retrying entry
/// point.
#[test]
fn reconfigure_invalidation_latches_exactly_once() {
    use nfd::govern::Budget;
    use nfd::session::RetryPolicy;

    let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();
    let budget = Budget::standard();

    let strict = Session::new(&schema, &sigma).unwrap();
    assert!(
        !strict
            .implies_with(&goal, &budget)
            .unwrap()
            .caches_invalidated,
        "a freshly compiled session never claims invalidation"
    );

    let pessimistic = strict.reconfigure(EmptySetPolicy::pessimistic()).unwrap();
    let first = pessimistic.implies_with(&goal, &budget).unwrap();
    assert!(
        first.caches_invalidated,
        "the first decision drains the latch"
    );
    let second = pessimistic.implies_with(&goal, &budget).unwrap();
    assert!(!second.caches_invalidated, "the latch fires exactly once");
    assert!(
        !strict
            .implies_with(&goal, &budget)
            .unwrap()
            .caches_invalidated,
        "the original session's latch is untouched by reconfigure"
    );

    // Same contract when the first post-reconfigure decision runs (and
    // retries) through implies_retry: one latched decision, then clear.
    let restrict = pessimistic.reconfigure(EmptySetPolicy::Forbidden).unwrap();
    let policy = RetryPolicy::new(3);
    let retried = restrict.implies_retry(&goal, &budget, &policy).unwrap();
    assert!(retried.caches_invalidated, "retry path surfaces the latch");
    let after = restrict.implies_retry(&goal, &budget, &policy).unwrap();
    assert!(!after.caches_invalidated, "and drains it exactly once too");
}

/// The E12 schema flips its verdict between the strict and pessimistic
/// regimes — which makes it the sharpest probe for a stale closure
/// cache: if `reconfigure` leaked the old policy's cached closures,
/// `implies_retry` on the rebuilt session would serve the *old* verdict
/// from a cache hit. It must instead recompute under the new policy,
/// from a cold cache.
#[test]
fn implies_retry_after_reconfigure_never_serves_a_stale_closure() {
    use nfd::govern::{Budget, Verdict};
    use nfd::session::RetryPolicy;

    let schema = Schema::parse("R : { <A: int, B: {<C: int>}, D: int> };").unwrap();
    let sigma = parse_set(&schema, "R:[A -> B:C]; R:[B:C -> D];").unwrap();
    let goal = Nfd::parse(&schema, "R:[A -> D]").unwrap();
    let budget = Budget::standard();
    let policy = RetryPolicy::new(2);

    // Warm the strict session's closure cache on exactly this goal.
    let strict = Session::new(&schema, &sigma).unwrap();
    for _ in 0..3 {
        let warm = strict.implies_retry(&goal, &budget, &policy).unwrap();
        assert_eq!(warm.verdict, Verdict::Implied, "strict regime: implied");
    }
    assert!(
        strict.cache_stats().hits > 0,
        "the repeat queries were served from the warm cache: {:?}",
        strict.cache_stats()
    );

    // Rebuild under the pessimistic policy: the same goal must flip to
    // not-implied, and must not be answered from the old cache.
    let pessimistic = strict.reconfigure(EmptySetPolicy::pessimistic()).unwrap();
    let flipped = pessimistic.implies_retry(&goal, &budget, &policy).unwrap();
    assert_eq!(
        flipped.verdict,
        Verdict::NotImplied,
        "pessimistic regime must recompute, not replay the strict cache"
    );
    assert_eq!(
        flipped.cache_hits, 0,
        "the first post-reconfigure decision cannot hit any cache"
    );

    // And back again: a second reconfigure restores the strict verdict,
    // proving the pessimistic cache did not leak either.
    let strict_again = pessimistic.reconfigure(EmptySetPolicy::Forbidden).unwrap();
    let restored = strict_again.implies_retry(&goal, &budget, &policy).unwrap();
    assert_eq!(restored.verdict, Verdict::Implied);
    assert_eq!(restored.cache_hits, 0, "cold again after the round trip");
}
