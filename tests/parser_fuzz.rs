//! Parser robustness: arbitrary input must produce `Ok` or `Err`, never a
//! panic, for every textual front end (types, values, schemas, instances,
//! paths, NFDs, the CLI argument parser). Inputs come from a seeded
//! deterministic generator, so every failure is reproducible by seed.

use nfd::core::Nfd;
use nfd::model::parse::{parse_schema, parse_type, parse_value};
use nfd::model::Schema;
use nfd::path::{Path, RootedPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Printable characters plus the troublemakers: quotes, escapes, brackets,
/// separators, multi-byte code points.
const POOL: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '"', '\'', '\\', '/', ':', ';', ',', '.',
    '-', '_', '<', '>', '{', '}', '[', ']', '(', ')', '!', '#', '%', '&', '*', '+', '=', '?', '@',
    '^', '|', '~', 'é', 'λ', '中', '🦀', '\u{2192}',
];

fn random_text(rng: &mut StdRng, max_len: usize) -> String {
    let n = rng.gen_range(0..=max_len);
    (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

#[test]
fn type_parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let _ = parse_type(&random_text(&mut rng, 60));
    }
}

#[test]
fn value_parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1111);
        let _ = parse_value(&random_text(&mut rng, 60));
    }
}

#[test]
fn schema_parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2222);
        let _ = parse_schema(&random_text(&mut rng, 80));
    }
}

#[test]
fn path_parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3333);
        let s = random_text(&mut rng, 40);
        let _ = Path::parse(&s);
        let _ = RootedPath::parse(&s);
    }
}

#[test]
fn nfd_parser_never_panics() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4444);
        let _ = Nfd::parse_unchecked(&random_text(&mut rng, 60));
    }
}

/// Structured near-miss inputs: syntactically plausible fragments with
/// deliberate mutations exercise the error paths more deeply than uniform
/// noise. The full cross-product is small, so enumerate it exhaustively.
#[test]
fn near_miss_schema_inputs() {
    for keyword in ["int", "in", "string", "str", "bool", "boool"] {
        for open in ["{<", "<{", "{", "<", ""] {
            for close in [">}", "}>", "}", ">", ""] {
                for sep in [":", ";", ",", " "] {
                    let candidate = format!("R {sep} {open}a{sep} {keyword}{close};");
                    let _ = parse_schema(&candidate);
                }
            }
        }
    }
}

#[test]
fn near_miss_nfd_inputs() {
    for base in ["R", "R:", ":R", "R:A", ""] {
        for arrow in ["->", "→", "-", ">", ""] {
            for lhs in ["A", "A,B", "A:,B", ",", ""] {
                for brackets in [("[", "]"), ("[", ""), ("", "]"), ("(", ")")] {
                    let candidate = format!("{base}:{}{lhs} {arrow} C{}", brackets.0, brackets.1);
                    let _ = Nfd::parse_unchecked(&candidate);
                }
            }
        }
    }
}

/// Adversarial depth: thousands of unclosed/closed nesting levels must be
/// rejected by the depth limit, not by blowing the stack.
#[test]
fn deep_nesting_corpus_is_rejected_not_fatal() {
    for depth in [200usize, 1_000, 50_000] {
        let balanced_ty = format!("{}int{}", "{".repeat(depth), "}".repeat(depth));
        assert!(parse_type(&balanced_ty).is_err(), "depth {depth}");
        let balanced_val = format!("{}7{}", "{".repeat(depth), "}".repeat(depth));
        assert!(parse_value(&balanced_val).is_err(), "depth {depth}");
        let record_ty = format!("{}int{}", "<a: {".repeat(depth), "}>".repeat(depth));
        assert!(parse_type(&format!("<x: {record_ty}>")).is_err(), "{depth}");
        // Unbalanced: all opens, no closes.
        assert!(parse_value(&"{".repeat(depth)).is_err());
        assert!(parse_type(&"<a: ".repeat(depth)).is_err());
        let schema = format!("R : {}int{};", "{".repeat(depth), "}".repeat(depth));
        assert!(parse_schema(&schema).is_err());
    }
}

/// Huge single tokens: megabyte identifiers, string literals and digit
/// runs parse (or fail) in bounded time and memory.
#[test]
fn huge_token_corpus() {
    let big_ident = "x".repeat(1_000_000);
    assert!(parse_type(&big_ident).is_err()); // not a base type
    let big_string = format!("\"{}\"", "s".repeat(1_000_000));
    assert!(parse_value(&big_string).is_ok());
    let big_digits = "9".repeat(1_000_000);
    assert!(parse_value(&big_digits).is_err()); // i64 overflow, reported
    let unterminated = format!("\"{}", "s".repeat(1_000_000));
    assert!(parse_value(&unterminated).is_err());
    // Past the hard input-size ceiling everything is rejected up front.
    let oversized = "1".repeat(nfd::model::MAX_INPUT_LEN + 1);
    assert!(matches!(
        parse_value(&oversized),
        Err(nfd::model::ModelError::Limit { .. })
    ));
}

/// Truncations of valid inputs: every prefix of a well-formed schema,
/// value and NFD must produce a clean error or a clean success.
#[test]
fn truncated_input_corpus() {
    let schema_text =
        "Course : { <cnum: string, time: int, students: {<sid: int, grade: string>}> };";
    for cut in 0..schema_text.len() {
        if schema_text.is_char_boundary(cut) {
            let _ = parse_schema(&schema_text[..cut]);
        }
    }
    let value_text = r#"{ <a: 1, b: {<c: "x\"y">, <c: "z">}>, <a: -2, b: {}> }"#;
    for cut in 0..value_text.len() {
        if value_text.is_char_boundary(cut) {
            let _ = parse_value(&value_text[..cut]);
        }
    }
    let nfd_text = "Course:students:[sid, grade -> sid]";
    for cut in 0..nfd_text.len() {
        let _ = Nfd::parse_unchecked(&nfd_text[..cut]);
    }
}

// The instance parser typechecks against a schema; fuzz both sides.
#[test]
fn instance_parser_never_panics() {
    let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5555);
        let _ = nfd::model::Instance::parse(&schema, &random_text(&mut rng, 80));
    }
}

// CLI argument handling survives arbitrary argument vectors.
#[test]
fn cli_never_panics() {
    for seed in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6666);
        let args: Vec<String> = (0..rng.gen_range(0..6usize))
            .map(|_| {
                let n = rng.gen_range(0..=20usize);
                (0..n)
                    .map(|_| (b' ' + rng.gen_range(0..95u8)) as char)
                    .collect()
            })
            .collect();
        let mut out = String::new();
        // Exit code is whatever it is; the property is "no panic".
        let _ = nfd::cli::run(&args, &mut out);
    }
}
