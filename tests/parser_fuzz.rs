//! Parser robustness: arbitrary input must produce `Ok` or `Err`, never a
//! panic, for every textual front end (types, values, schemas, instances,
//! paths, NFDs, the CLI argument parser).

use nfd::core::Nfd;
use nfd::model::parse::{parse_schema, parse_type, parse_value};
use nfd::model::Schema;
use nfd::path::{Path, RootedPath};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn type_parser_never_panics(s in "\\PC{0,60}") {
        let _ = parse_type(&s);
    }

    #[test]
    fn value_parser_never_panics(s in "\\PC{0,60}") {
        let _ = parse_value(&s);
    }

    #[test]
    fn schema_parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse_schema(&s);
    }

    #[test]
    fn path_parser_never_panics(s in "\\PC{0,40}") {
        let _ = Path::parse(&s);
        let _ = RootedPath::parse(&s);
    }

    #[test]
    fn nfd_parser_never_panics(s in "\\PC{0,60}") {
        let _ = Nfd::parse_unchecked(&s);
    }

    /// Structured near-miss inputs: syntactically plausible fragments with
    /// deliberate mutations exercise the error paths more deeply than
    /// uniform noise.
    #[test]
    fn near_miss_schema_inputs(
        keyword in prop::sample::select(vec!["int", "in", "string", "str", "bool", "boool"]),
        open in prop::sample::select(vec!["{<", "<{", "{", "<", ""]),
        close in prop::sample::select(vec![">}", "}>", "}", ">", ""]),
        sep in prop::sample::select(vec![":", ";", ",", " "]),
    ) {
        let candidate = format!("R {sep} {open}a{sep} {keyword}{close};");
        let _ = parse_schema(&candidate);
    }

    #[test]
    fn near_miss_nfd_inputs(
        base in prop::sample::select(vec!["R", "R:", ":R", "R:A", ""]),
        arrow in prop::sample::select(vec!["->", "→", "-", ">", ""]),
        lhs in prop::sample::select(vec!["A", "A,B", "A:,B", ",", ""]),
        brackets in prop::sample::select(vec![("[", "]"), ("[", ""), ("", "]"), ("(", ")")]),
    ) {
        let candidate = format!("{base}:{}{lhs} {arrow} C{}", brackets.0, brackets.1);
        let _ = Nfd::parse_unchecked(&candidate);
    }
}

// The instance parser typechecks against a schema; fuzz both sides.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn instance_parser_never_panics(s in "\\PC{0,80}") {
        let schema = Schema::parse("R : {<A: int, B: {<C: int>}>};").unwrap();
        let _ = nfd::model::Instance::parse(&schema, &s);
    }
}

// CLI argument handling survives arbitrary argument vectors.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cli_never_panics(args in prop::collection::vec("[ -~]{0,20}", 0..6)) {
        let mut out = String::new();
        // Exit code is whatever it is; the property is "no panic".
        let _ = nfd::cli::run(&args, &mut out);
    }
}
