//! Failpoint-driven chaos harness (runs only under `--features
//! failpoints`; see `crates/faults`).
//!
//! Strategy: first a *census* — run a representative workload with
//! nothing armed and read off which `fail_point!` sites it actually
//! reaches — then a site × action sweep injecting every fault at every
//! reached layer and holding the library to its degradation contract:
//!
//! * **no panic ever escapes a `Session` entry point or `cli::run`** —
//!   injected panics surface as `CoreError::Internal` / exit code 101;
//! * **a produced verdict is never wrong** — whatever a faulted run
//!   answers (if it answers at all) matches the fault-free reference;
//!   faults may only ever downgrade an answer to `Exhausted`/`Internal`;
//! * **errors keep their contracted shapes** — only `Exhausted` and
//!   `Internal`, never a new variant, never a poisoned lock;
//! * **the session outlives the fault** — once the site is disarmed the
//!   same session answers exactly as before;
//! * **cancellation injected inside the batch pool is repaired** — the
//!   normalization pass re-runs tainted goals, so the batch still equals
//!   the sequential reference bit for bit.
//!
//! The failpoint registry is process-global, so every test here
//! serializes on one lock and `reset()`s between cases; CI additionally
//! runs this binary with `--test-threads=1`.

#![cfg(feature = "failpoints")]

mod common;

use common::{course_schema, course_sigma};
use nfd::faults::{self, FaultAction};
use nfd::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// One registry, one test at a time.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The goal set used throughout: a mix of implied and not-implied NFDs
/// over the paper's Course schema.
const GOALS: [&str; 5] = [
    "Course:[time, students:sid -> books]",
    "Course:[cnum -> time]",
    "Course:[time -> cnum]",
    "Course:[books:isbn -> books:title]",
    "Course:[books:title -> books:isbn]",
];

fn fixture() -> (Schema, Vec<Nfd>) {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    (schema, sigma)
}

fn parse_goals(schema: &Schema) -> Vec<Nfd> {
    GOALS
        .iter()
        .map(|t| Nfd::parse(schema, t).unwrap())
        .collect()
}

/// Fault-free ground truth for [`GOALS`].
fn reference_verdicts(session: &Session, goals: &[Nfd]) -> Vec<bool> {
    goals
        .iter()
        .map(|g| {
            session
                .implies_with(g, &Budget::standard())
                .expect("fault-free run decides")
                .verdict
                .as_bool()
                .expect("standard budget answers the Course goals")
        })
        .collect()
}

/// Asserts an error has one of the two contracted shapes.
fn assert_contracted_error(site: &str, action: FaultAction, e: &CoreError) {
    assert!(
        matches!(e, CoreError::Exhausted(_) | CoreError::Internal(_)),
        "{site} × {action:?}: error is neither Exhausted nor Internal: {e:?}"
    );
}

// ---------------------------------------------------------------------
// Phase 1: census.
// ---------------------------------------------------------------------

/// Sites the standard workload must reach; a site disappearing from this
/// census means a refactor silently dropped its chaos coverage.
const EXPECTED_SITES: [&str; 20] = [
    "chase::build",
    "chase::scan",
    "chase::step",
    "delta::insert",
    "delta::retract",
    "engine::build",
    "engine::closure",
    "engine::implies",
    "engine::saturate",
    "engine::singleton",
    "logic::eval",
    "model::parse_input",
    "model::parse_depth",
    "par::reassemble",
    "par::worker",
    "session::cascade_saturation",
    "snap::read",
    "snap::rename",
    "snap::verify",
    "snap::write",
];

#[test]
fn census_reaches_every_layer() {
    let _guard = serial();
    faults::reset();

    // Parse → build → query → batch → closure → direct deciders: one
    // sweep through everything a user can drive, nothing armed.
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let mut session = Session::new(&schema, &sigma).unwrap();
    let budget = Budget::standard();
    for g in &goals {
        session.implies_with(g, &budget).unwrap();
    }
    // A starved query walks the whole cascade (saturation exhausts, the
    // chase and logic-eval get their turn).
    session
        .implies_with(&goals[0], &Budget::limited(1))
        .unwrap();
    for threads in [1usize, 4] {
        session.implies_batch(&goals, &budget, threads).unwrap();
    }
    session
        .closure(
            &RootedPath::parse("Course").unwrap(),
            &[Path::parse("cnum").unwrap()],
        )
        .unwrap();
    // The fallback deciders under a generous budget, so their deep sites
    // (tableau violation scan, ∀-evaluation) are reached too.
    for d in nfd::session::all_deciders() {
        d.decide(&schema, &sigma, &goals[0], &budget).unwrap();
    }
    // Σ maintenance: one insert and one retraction reach the delta sites.
    let extra = Nfd::parse(&schema, "Course:[time -> books:isbn]").unwrap();
    session.add_deps(std::slice::from_ref(&extra)).unwrap();
    session.remove_deps(std::slice::from_ref(&extra)).unwrap();
    // Snapshot persistence: freeze → atomic write → read back → strict
    // decode → thaw reaches all four snap sites.
    let dir = std::env::temp_dir().join(format!("nfd-chaos-census-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("census.snap");
    nfd::snap::write_atomic(&snap_path, &nfd::snap::encode(&session.freeze())).unwrap();
    let decoded = nfd::snap::decode(&nfd::snap::read_file(&snap_path).unwrap()).unwrap();
    Session::thaw(
        &schema,
        &sigma,
        EmptySetPolicy::Forbidden,
        Budget::standard(),
        nfd_core::TierPreference::Auto,
        &decoded,
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    let hit = faults::sites_hit();
    let names: Vec<&str> = hit.iter().map(|(n, _)| n.as_str()).collect();
    for site in EXPECTED_SITES {
        assert!(names.contains(&site), "census missed `{site}`: {names:?}");
    }
    assert!(
        hit.len() >= 12,
        "census must reach at least 12 sites, got {}: {names:?}",
        hit.len()
    );
    faults::reset();
}

// ---------------------------------------------------------------------
// Phase 2: site × action sweep.
// ---------------------------------------------------------------------

/// Query-phase sites, each with the *companion* faults needed to steer
/// the cascade into the layer under test (the chase only runs once
/// saturation yields, logic-eval once both yield). Companions are armed
/// with plain `ReturnExhausted`, which never changes a produced verdict.
const QUERY_SITES: [(&str, &[&str]); 12] = [
    ("engine::build", &[]),
    ("engine::saturate", &[]),
    ("engine::singleton", &[]),
    ("engine::implies", &[]),
    ("session::cascade_saturation", &[]),
    ("session::cascade_chase", &["session::cascade_saturation"]),
    ("chase::build", &["session::cascade_saturation"]),
    ("chase::step", &["session::cascade_saturation"]),
    ("chase::scan", &["session::cascade_saturation"]),
    (
        "session::cascade_logic_eval",
        &["session::cascade_saturation", "session::cascade_chase"],
    ),
    (
        "logic::eval",
        &["session::cascade_saturation", "session::cascade_chase"],
    ),
    (
        "logic::forall",
        &["session::cascade_saturation", "session::cascade_chase"],
    ),
];

const ACTIONS: [FaultAction; 4] = [
    FaultAction::ReturnExhausted,
    FaultAction::Panic,
    FaultAction::Delay(2),
    FaultAction::Cancel,
];

#[test]
fn every_query_site_survives_every_action() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let expected = reference_verdicts(&session, &goals);

    for (site, companions) in QUERY_SITES {
        for action in ACTIONS {
            faults::reset();
            for companion in companions {
                faults::configure(companion, FaultAction::ReturnExhausted);
            }
            faults::configure(site, action);

            for (goal, &want) in goals.iter().zip(&expected) {
                // Fresh budget per query: `Cancel` poisons the token it
                // finds in scope, by design.
                let budget = Budget::standard();
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| session.implies_with(goal, &budget)));
                let result = outcome
                    .unwrap_or_else(|_| panic!("{site} × {action:?}: panic escaped implies_with"));
                match result {
                    Ok(d) => {
                        if let Some(got) = d.verdict.as_bool() {
                            assert_eq!(
                                got, want,
                                "{site} × {action:?}: flipped the verdict on {goal}"
                            );
                        }
                    }
                    Err(e) => assert_contracted_error(site, action, &e),
                }
            }

            // Disarm; the same session must answer exactly as before.
            faults::reset();
            for (goal, &want) in goals.iter().zip(&expected) {
                let d = session
                    .implies_with(goal, &Budget::standard())
                    .unwrap_or_else(|e| {
                        panic!("{site} × {action:?}: session unusable after fault: {e}")
                    });
                assert_eq!(d.verdict.as_bool(), Some(want), "{site} × {action:?}");
            }
        }
    }
}

#[test]
fn closure_contains_faults_and_recovers_on_a_fresh_session() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let base = RootedPath::parse("Course").unwrap();
    let lhs = [Path::parse("cnum").unwrap()];
    let reference = {
        let session = Session::new(&schema, &sigma).unwrap();
        session.closure(&base, &lhs).unwrap()
    };

    for action in ACTIONS {
        faults::reset();
        // Fresh session per case: `Cancel` here cancels the session
        // engine's own budget token, which (correctly, cooperatively)
        // retires that session for engine-level calls.
        let session = Session::new(&schema, &sigma).unwrap();
        faults::configure("engine::closure", action);
        let result = catch_unwind(AssertUnwindSafe(|| session.closure(&base, &lhs)))
            .unwrap_or_else(|_| panic!("engine::closure × {action:?}: panic escaped"));
        match result {
            Ok(c) => assert_eq!(c, reference, "engine::closure × {action:?}"),
            Err(e) => assert_contracted_error("engine::closure", action, &e),
        }
        faults::reset();
        let fresh = Session::new(&schema, &sigma).unwrap();
        assert_eq!(fresh.closure(&base, &lhs).unwrap(), reference);
    }
}

#[test]
fn batch_sites_degrade_gracefully_and_normalization_repairs_cancel() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let expected = reference_verdicts(&session, &goals);
    let reference = session
        .implies_batch(&goals, &Budget::standard(), 4)
        .unwrap();

    let batch_sites = [
        "session::batch_goal",
        "par::worker",
        "par::reassemble",
        "engine::build",
        "session::cascade_saturation",
    ];
    for site in batch_sites {
        for action in ACTIONS {
            faults::reset();
            faults::configure(site, action);
            let budget = Budget::standard();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.implies_batch(&goals, &budget, 4)
            }));
            let result = outcome
                .unwrap_or_else(|_| panic!("{site} × {action:?}: panic escaped implies_batch"));
            match result {
                Ok(batch) => {
                    assert_eq!(batch.decisions.len(), goals.len());
                    for (i, slot) in batch.decisions.iter().enumerate() {
                        match slot {
                            Ok(d) => {
                                if let Some(got) = d.verdict.as_bool() {
                                    assert_eq!(
                                        got, expected[i],
                                        "{site} × {action:?}: flipped goal {i}"
                                    );
                                }
                            }
                            Err(e) => assert_contracted_error(site, action, e),
                        }
                    }
                }
                // The pool machinery itself may abort the whole batch
                // (e.g. a worker-thread panic re-raised after join) —
                // but only as a contracted error.
                Err(e) => assert_contracted_error(site, action, &e),
            }

            // The pool and session survive: disarmed, the same batch
            // call reproduces the reference bit for bit.
            faults::reset();
            let after = session
                .implies_batch(&goals, &Budget::standard(), 4)
                .unwrap_or_else(|e| panic!("{site} × {action:?}: batch unusable after fault: {e}"));
            assert_eq!(after, reference, "{site} × {action:?}: batch changed");
        }
    }

    // The headline invariant: cancellation injected *inside* the pool is
    // indistinguishable from a pool-internal stop, so the normalization
    // pass must repair the batch to equal the sequential reference
    // exactly — verdicts, cascade logs, cutoff and all.
    faults::reset();
    faults::configure("session::batch_goal", FaultAction::Cancel);
    let repaired = session
        .implies_batch(&goals, &Budget::standard(), 4)
        .unwrap();
    faults::reset();
    assert_eq!(
        repaired, reference,
        "injected pool cancellation must be repaired by normalization"
    );
}

#[test]
fn build_sites_fail_closed_and_disarm_cleanly() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();

    for site in ["engine::build", "engine::saturate", "engine::singleton"] {
        for action in ACTIONS {
            faults::reset();
            faults::configure(site, action);
            let result = catch_unwind(AssertUnwindSafe(|| Session::new(&schema, &sigma)))
                .unwrap_or_else(|_| panic!("{site} × {action:?}: panic escaped Session::new"));
            match result {
                Ok(s) => {
                    // Delay (and Cancel losing the race) still builds; it
                    // must be a *working* session.
                    faults::reset();
                    assert!(s
                        .implies_text("Course:[cnum -> time]")
                        .expect("built session answers"));
                }
                Err(e) => assert_contracted_error(site, action, &e),
            }
            faults::reset();
            Session::new(&schema, &sigma)
                .unwrap_or_else(|e| panic!("{site} × {action:?}: build broken after reset: {e}"));
        }
    }

    // Parser sites via the library: a fault is an input-shaped error
    // (the model layer has no Exhausted channel), never a wrong parse.
    for site in ["model::parse_input", "model::parse_depth"] {
        faults::reset();
        faults::configure(site, FaultAction::ReturnExhausted);
        assert!(
            Schema::parse("Course : { <cnum: string> };").is_err(),
            "{site}: injected parse fault must surface as an error"
        );
        faults::reset();
        assert!(Schema::parse("Course : { <cnum: string> };").is_ok());
    }
    faults::reset();
}

// ---------------------------------------------------------------------
// Retry / budget escalation under injected faults.
// ---------------------------------------------------------------------

#[test]
fn retry_recovers_from_transient_injected_exhaustion() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let expected = reference_verdicts(&session, &goals);

    // Every decider of the first run reports (injected) exhaustion; the
    // faults burn out after one firing each, so the first retry answers.
    for cascade_site in [
        "session::cascade_saturation",
        "session::cascade_chase",
        "session::cascade_logic_eval",
    ] {
        faults::configure_limited(cascade_site, 1, FaultAction::ReturnExhausted);
    }
    let policy = RetryPolicy::new(3);
    let d = session
        .implies_retry(&goals[0], &Budget::standard(), &policy)
        .unwrap();
    faults::reset();
    assert_eq!(
        d.verdict.as_bool(),
        Some(expected[0]),
        "retry must recover the fault-free verdict"
    );
    let rounds: Vec<u32> = d.attempts.iter().map(|a| a.round).collect();
    assert_eq!(
        rounds.iter().max(),
        Some(&1),
        "exactly one retry, recorded in the log: {rounds:?}"
    );
    assert!(
        d.attempts
            .iter()
            .any(|a| a.round == 0 && matches!(a.outcome, AttemptOutcome::Exhausted(_))),
        "round 0 keeps its honest exhaustion entries"
    );
    assert!(
        d.attempts
            .iter()
            .any(|a| a.round == 1 && matches!(a.outcome, AttemptOutcome::Answered(_))),
        "round 1 answered"
    );
}

#[test]
fn cancellation_is_never_retried() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let session = Session::new(&schema, &sigma).unwrap();

    // `Cancel` at the saturation cascade site cancels the query budget's
    // token; the cascade honours it, and the retry loop must stop
    // immediately rather than spin against a cancelled token.
    faults::configure("session::cascade_saturation", FaultAction::Cancel);
    let policy = RetryPolicy::new(5);
    let d = session
        .implies_retry(&goals[0], &Budget::standard(), &policy)
        .unwrap();
    faults::reset();
    assert!(
        matches!(&d.verdict, Verdict::Exhausted(r) if r.kind == ResourceKind::Cancelled),
        "a cancelled run stays cancelled: {:?}",
        d.verdict
    );
    assert_eq!(
        d.attempts.iter().map(|a| a.round).max(),
        Some(0),
        "no retry rounds after cancellation"
    );
}

#[test]
fn batch_retry_heals_an_injected_exhaustion_and_logs_rounds() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let expected = reference_verdicts(&session, &goals);

    // Exactly one worker reports injected exhaustion before producing a
    // decision; its siblings are unaffected, and the retry pass must heal
    // the faulted goal under an escalated budget (the fault has burned
    // out by then).
    faults::configure_limited("session::batch_goal", 1, FaultAction::ReturnExhausted);
    let policy = RetryPolicy::new(3);
    let batch = session
        .implies_batch_retry(&goals, &Budget::standard(), 4, &policy)
        .unwrap();
    faults::reset();

    assert_eq!(batch.first_exhausted, None, "every goal healed");
    assert_eq!(batch.failed_count(), 0);
    for (i, slot) in batch.decisions.iter().enumerate() {
        let d = slot.as_ref().expect("no internal failures injected");
        assert_eq!(
            d.verdict.as_bool(),
            Some(expected[i]),
            "goal {i} recovered the reference verdict"
        );
    }
    assert!(
        batch
            .decisions
            .iter()
            .flat_map(|d| &d.as_ref().unwrap().attempts)
            .any(|a| a.round >= 1),
        "the merged logs record the retry rounds"
    );
}

// ---------------------------------------------------------------------
// The CLI under faults: exit codes keep their contract.
// ---------------------------------------------------------------------

/// Writes the Course fixture to temp files and returns
/// `(schema_path, deps_path, goals_path)`.
fn cli_fixture_files() -> (std::path::PathBuf, std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("nfd-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let schema = dir.join("course.schema");
    let deps = dir.join("course.deps");
    let goals = dir.join("course.goals");
    std::fs::write(
        &schema,
        "Course : { <cnum: string, time: int,
                     students: {<sid: int, age: int, grade: string>},
                     books: {<isbn: string, title: string>}> };",
    )
    .unwrap();
    std::fs::write(
        &deps,
        "Course:[cnum -> time]; Course:[cnum -> students]; Course:[cnum -> books];
         Course:[books:isbn -> books:title];
         Course:students:[sid -> grade];
         Course:[students:sid -> students:age];
         Course:[time, students:sid -> cnum];",
    )
    .unwrap();
    std::fs::write(&goals, GOALS.join(";\n")).unwrap();
    (schema, deps, goals)
}

fn cli_args(items: &[&str]) -> Vec<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[test]
fn cli_exit_codes_keep_their_contract_under_faults() {
    let _guard = serial();
    faults::reset();
    let (schema, deps, goals) = cli_fixture_files();
    let single = cli_args(&[
        "implies",
        "--schema",
        schema.to_str().unwrap(),
        "--deps",
        deps.to_str().unwrap(),
        "Course:[cnum -> time]",
    ]);
    let batch = cli_args(&[
        "implies",
        "--schema",
        schema.to_str().unwrap(),
        "--deps",
        deps.to_str().unwrap(),
        "--threads",
        "4",
        "--goals",
        goals.to_str().unwrap(),
    ]);

    let mut out = String::new();
    let single_baseline = nfd::cli::run(&single, &mut out);
    assert_eq!(single_baseline, 0, "fault-free baseline: {out}");
    out.clear();
    let batch_baseline = nfd::cli::run(&batch, &mut out);
    assert_eq!(batch_baseline, 1, "one GOALS entry is not implied: {out}");

    let sites = [
        "model::parse_input",
        "model::parse_depth",
        "engine::build",
        "engine::saturate",
        "engine::implies",
        "session::cascade_saturation",
        "session::batch_goal",
        "par::worker",
    ];
    for site in sites {
        for action in ACTIONS {
            for (args, baseline) in [(&single, single_baseline), (&batch, batch_baseline)] {
                faults::reset();
                faults::configure(site, action);
                let mut out = String::new();
                let code = catch_unwind(AssertUnwindSafe(|| nfd::cli::run(args, &mut out)))
                    .unwrap_or_else(|_| panic!("{site} × {action:?}: panic escaped cli::run"));
                assert!(
                    [0, 1, 2, 3, 101].contains(&code),
                    "{site} × {action:?}: exit code {code} outside the contract\n{out}"
                );
                // A fault may downgrade a verdict to an error code, but
                // never flip implied ↔ not-implied.
                if code <= 1 {
                    assert_eq!(
                        code, baseline,
                        "{site} × {action:?}: fault flipped the CLI verdict\n{out}"
                    );
                }
            }
        }
    }
    faults::reset();

    // --retry heals a transient injected exhaustion end-to-end: every
    // cascade decider fails once, the retry answers, the exit code and
    // verdict match the baseline.
    for cascade_site in [
        "session::cascade_saturation",
        "session::cascade_chase",
        "session::cascade_logic_eval",
    ] {
        faults::configure_limited(cascade_site, 1, FaultAction::ReturnExhausted);
    }
    let mut retry_args = single.clone();
    retry_args.splice(1..1, cli_args(&["--retry", "2"]));
    let mut out = String::new();
    let code = nfd::cli::run(&retry_args, &mut out);
    faults::reset();
    assert_eq!(code, 0, "--retry must recover the verdict: {out}");
    assert!(
        out.contains("after 1 retry"),
        "retry surfaced to the user: {out}"
    );

    // Without --retry the same transient fault is terminal (exit 3).
    for cascade_site in [
        "session::cascade_saturation",
        "session::cascade_chase",
        "session::cascade_logic_eval",
    ] {
        faults::configure_limited(cascade_site, 1, FaultAction::ReturnExhausted);
    }
    let mut out = String::new();
    let code = nfd::cli::run(&single, &mut out);
    faults::reset();
    assert_eq!(
        code, 3,
        "without --retry the injected exhaustion is final: {out}"
    );
}

#[test]
fn nfd_failpoints_env_var_arms_the_binary() {
    let _guard = serial();
    let (schema, deps, _) = cli_fixture_files();
    let args = [
        "implies",
        "--schema",
        schema.to_str().unwrap(),
        "--deps",
        deps.to_str().unwrap(),
        "Course:[cnum -> time]",
    ];
    let run = |spec: Option<&str>| {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_nfdtool"));
        cmd.args(args).env_remove("NFD_FAILPOINTS");
        if let Some(spec) = spec {
            cmd.env("NFD_FAILPOINTS", spec);
        }
        cmd.output().expect("nfdtool runs")
    };

    assert_eq!(run(None).status.code(), Some(0), "fault-free baseline");
    let faulted = run(Some("engine::build=return-exhausted"));
    assert_eq!(
        faulted.status.code(),
        Some(3),
        "an injected build exhaustion exits 3: {}",
        String::from_utf8_lossy(&faulted.stdout)
    );
    assert_eq!(
        run(Some("engine::build=delay(1)")).status.code(),
        Some(0),
        "a delay-only fault changes nothing"
    );
    // A malformed spec is a logged no-op: nothing is armed — not even
    // the entries that would have parsed — and the process warns on
    // stderr instead of running a partial fault plan silently.
    let partial = run(Some("engine::build=return-exhausted;garbage"));
    assert_eq!(
        partial.status.code(),
        Some(0),
        "valid prefix of a malformed spec must not arm"
    );
    assert!(
        String::from_utf8_lossy(&partial.stderr).contains("NFD_FAILPOINTS ignored"),
        "the no-op is logged: {}",
        String::from_utf8_lossy(&partial.stderr)
    );
    assert_eq!(run(Some("garbage;;also=nonsense")).status.code(), Some(0));
    // Trailing separators are not malformed.
    assert_eq!(
        run(Some("engine::build=return-exhausted;")).status.code(),
        Some(3),
        "trailing separator still arms the spec"
    );
}

// ---------------------------------------------------------------------
// Phase 5: Σ-maintenance faults (the delta sites).
// ---------------------------------------------------------------------

/// Faults on `delta::insert` / `delta::retract` and mid-rebuild: an
/// injected exhaustion or panic during a mutation surfaces as a
/// contracted error, rolls the engine back to the pre-mutation Σ —
/// bit-identical to a fresh build over it, never a half-applied hybrid —
/// and the session keeps answering; disarmed, the same mutation applies.
#[test]
fn delta_faults_roll_back_and_the_session_survives() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let goals = parse_goals(&schema);
    let mut session = Session::new(&schema, &sigma).unwrap();
    let reference = reference_verdicts(&session, &goals);
    let extra = Nfd::parse(&schema, "Course:[time -> books:isbn]").unwrap();

    // Insert faults: Σ and pools untouched, answers unchanged.
    for action in [FaultAction::ReturnExhausted, FaultAction::Panic] {
        faults::configure_limited("delta::insert", 1, action);
        let e = session.add_deps(std::slice::from_ref(&extra)).unwrap_err();
        assert_contracted_error("delta::insert", action, &e);
        assert_eq!(
            session.engine().pool_dump(),
            Session::new(&schema, &sigma).unwrap().engine().pool_dump(),
            "a faulted insert must leave Σ and pools untouched ({action:?})"
        );
        assert_eq!(
            reference,
            reference_verdicts(&session, &goals),
            "session must survive a faulted insert ({action:?})"
        );
    }
    faults::reset();

    // Disarmed, the insert applies; then fault its retraction.
    session.add_deps(std::slice::from_ref(&extra)).unwrap();
    let mut grown = sigma.clone();
    grown.push(extra.clone());
    let grown_pool = Session::new(&schema, &grown).unwrap().engine().pool_dump();
    assert_eq!(session.engine().pool_dump(), grown_pool);
    for action in [FaultAction::ReturnExhausted, FaultAction::Panic] {
        faults::configure_limited("delta::retract", 1, action);
        let e = session
            .remove_deps(std::slice::from_ref(&extra))
            .unwrap_err();
        assert_contracted_error("delta::retract", action, &e);
        assert_eq!(
            session.engine().pool_dump(),
            grown_pool,
            "a faulted retraction must leave Σ and pools untouched ({action:?})"
        );
    }
    faults::reset();

    // A panic injected *mid-rebuild* (the saturation loop inside the
    // relation replay) during a retraction: the catch-and-rollback seam
    // in `remove_dep` must restore Σ, not leave a stale hybrid.
    faults::configure_limited("engine::saturate", 1, FaultAction::Panic);
    let e = session
        .remove_deps(std::slice::from_ref(&extra))
        .unwrap_err();
    assert_contracted_error("engine::saturate", FaultAction::Panic, &e);
    assert_eq!(
        session.engine().pool_dump(),
        grown_pool,
        "a mid-rebuild panic must roll Σ back, not leave a hybrid"
    );
    faults::reset();

    // Disarmed, the retraction applies and the round trip is exact.
    session.remove_deps(std::slice::from_ref(&extra)).unwrap();
    assert_eq!(
        session.engine().pool_dump(),
        Session::new(&schema, &sigma).unwrap().engine().pool_dump()
    );
    assert_eq!(reference, reference_verdicts(&session, &goals));
    faults::reset();
}

// ---------------------------------------------------------------------
// Phase 6: snapshot persistence faults (the snap sites).
// ---------------------------------------------------------------------

/// Every `snap::*` site injects its *typed* error — `SnapError::Io` for
/// the filesystem sites, `SnapError::Injected` for verification — and a
/// failed write is crash-atomic: no torn target, no temp debris, an
/// existing snapshot left byte-identical.
#[test]
fn snap_sites_inject_typed_errors_and_writes_stay_atomic() {
    let _guard = serial();
    faults::reset();
    let (schema, sigma) = fixture();
    let session = Session::new(&schema, &sigma).unwrap();
    let image = session.freeze();
    let bytes = nfd::snap::encode(&image);
    let dir = std::env::temp_dir().join(format!("nfd-chaos-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("image.snap");

    // Faulted first-time writes: typed error, no target file, no temp
    // file left behind.
    for (site, needle) in [
        ("snap::write", "injected write fault"),
        ("snap::rename", "injected rename fault"),
    ] {
        faults::configure(site, FaultAction::ReturnExhausted);
        match nfd::snap::write_atomic(&path, &bytes) {
            Err(nfd::snap::SnapError::Io(msg)) => {
                assert!(msg.contains(needle), "{site}: wrong message: {msg}");
            }
            other => panic!("{site}: want a typed Io error, got {other:?}"),
        }
        faults::reset();
        assert!(!path.exists(), "{site}: faulted write left a target file");
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "{site}: faulted write left temp debris"
        );
    }

    // A faulted *overwrite* leaves the previous snapshot byte-identical:
    // either the old file or the new one, never a torn hybrid.
    nfd::snap::write_atomic(&path, &bytes).unwrap();
    let mut newer = bytes.clone();
    newer.push(0);
    faults::configure("snap::rename", FaultAction::ReturnExhausted);
    assert!(nfd::snap::write_atomic(&path, &newer).is_err());
    faults::reset();
    assert_eq!(
        nfd::snap::read_file(&path).unwrap(),
        bytes,
        "a failed overwrite must leave the previous snapshot intact"
    );

    // Faulted read: typed error; disarmed, the same path reads back.
    faults::configure("snap::read", FaultAction::ReturnExhausted);
    match nfd::snap::read_file(&path) {
        Err(nfd::snap::SnapError::Io(msg)) => {
            assert!(msg.contains("injected read fault"), "{msg}");
        }
        other => panic!("snap::read: want a typed Io error, got {other:?}"),
    }
    faults::reset();
    assert_eq!(nfd::snap::read_file(&path).unwrap(), bytes);

    // Faulted verification: both decoders reject with the dedicated
    // `Injected` variant; disarmed, the same bytes decode losslessly.
    for action in [FaultAction::ReturnExhausted, FaultAction::Cancel] {
        faults::configure("snap::verify", action);
        assert!(
            matches!(
                nfd::snap::decode(&bytes),
                Err(nfd::snap::SnapError::Injected)
            ),
            "snap::verify × {action:?}: strict decode must reject typed"
        );
        assert!(
            matches!(
                nfd::snap::decode_lenient(&bytes),
                Err(nfd::snap::SnapError::Injected)
            ),
            "snap::verify × {action:?}: lenient decode must reject typed"
        );
        faults::reset();
    }
    assert_eq!(nfd::snap::decode(&bytes).unwrap(), image);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The CLI's warm-start contract under injected snapshot faults: a
/// rejected thaw is a *logged degradation to a fresh compile* — same
/// exit code, same verdict — and a faulted `nfdtool snapshot` write is a
/// clean typed CLI error that leaves no file behind.
#[test]
fn cli_warm_start_degrades_gracefully_under_snap_faults() {
    let _guard = serial();
    faults::reset();
    let (schema, deps, _) = cli_fixture_files();
    let dir = std::env::temp_dir().join(format!("nfd-chaos-snapcli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("warm.snap");

    // Write a pristine snapshot through the CLI itself.
    let write_args = cli_args(&[
        "snapshot",
        "--schema",
        schema.to_str().unwrap(),
        "--deps",
        deps.to_str().unwrap(),
        "--out",
        snap_path.to_str().unwrap(),
    ]);
    let mut out = String::new();
    assert_eq!(nfd::cli::run(&write_args, &mut out), 0, "{out}");

    let query = cli_args(&[
        "implies",
        "--schema",
        schema.to_str().unwrap(),
        "--deps",
        deps.to_str().unwrap(),
        "--snapshot",
        snap_path.to_str().unwrap(),
        // The fixture image is tiny; disable the size floor so the
        // faulted *thaw* path is what this test drives.
        "--thaw-min-bytes",
        "0",
        "Course:[cnum -> time]",
    ]);
    let mut out = String::new();
    let baseline = nfd::cli::run(&query, &mut out);
    assert_eq!(baseline, 0, "fault-free warm start: {out}");
    assert!(out.contains("warm start"), "{out}");

    for site in ["snap::read", "snap::verify"] {
        for action in ACTIONS {
            faults::reset();
            faults::configure(site, action);
            let mut out = String::new();
            let code = catch_unwind(AssertUnwindSafe(|| nfd::cli::run(&query, &mut out)))
                .unwrap_or_else(|_| panic!("{site} × {action:?}: panic escaped cli::run"));
            assert!(
                [0, 1, 2, 3, 101].contains(&code),
                "{site} × {action:?}: exit code {code} outside the contract\n{out}"
            );
            if code <= 1 {
                assert_eq!(
                    code, baseline,
                    "{site} × {action:?}: fault flipped the CLI verdict\n{out}"
                );
            }
            // An injected rejection is a logged degradation, never a
            // failure: the query is answered from a fresh compile.
            if matches!(action, FaultAction::ReturnExhausted | FaultAction::Cancel) {
                assert_eq!(
                    code, baseline,
                    "{site} × {action:?}: degradation failed\n{out}"
                );
                assert!(
                    out.contains("compiling fresh"),
                    "{site} × {action:?}: fallback not logged\n{out}"
                );
            }
        }
    }
    faults::reset();

    // A faulted snapshot write surfaces the typed error as a clean CLI
    // failure and leaves nothing at --out.
    for site in ["snap::write", "snap::rename"] {
        faults::reset();
        faults::configure(site, FaultAction::ReturnExhausted);
        let faulted_out = dir.join("faulted.snap");
        let args = cli_args(&[
            "snapshot",
            "--schema",
            schema.to_str().unwrap(),
            "--deps",
            deps.to_str().unwrap(),
            "--out",
            faulted_out.to_str().unwrap(),
        ]);
        let mut out = String::new();
        let code = nfd::cli::run(&args, &mut out);
        assert_eq!(code, 2, "{site}: faulted write must fail cleanly: {out}");
        assert!(out.contains("injected"), "{site}: typed reason lost: {out}");
        faults::reset();
        assert!(
            !faulted_out.exists(),
            "{site}: faulted CLI write left a file behind"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
