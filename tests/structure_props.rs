//! Property-based tests on the core data structures and algebraic
//! invariants: canonical set values, path algebra, trie/assignment laws,
//! the relational baseline's closure laws, and engine monotonicity.
//! Randomness is a seeded deterministic generator, so every failure is
//! reproducible by seed.

mod common;

use common::*;
use nfd::core::engine::Engine;
use nfd::model::{SetValue, Value};
use nfd::path::nav::{assignments, eval_path};
use nfd::path::{Path, PathTrie};
use nfd::relational::{attrs, closure, Fd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_ints(rng: &mut StdRng, max_len: usize, bound: i64) -> Vec<i64> {
    (0..rng.gen_range(0..=max_len))
        .map(|_| rng.gen_range(0..bound * 2) - bound)
        .collect()
}

fn random_small_labels(rng: &mut StdRng, alphabet: &[&str], max_len: usize) -> Vec<String> {
    (0..rng.gen_range(0..=max_len))
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())].to_string())
        .collect()
}

// ---- SetValue canonicalization -------------------------------------------

#[test]
fn set_value_is_sorted_and_deduped() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs = random_ints(&mut rng, 20, 1_000_000);
        let s: SetValue = xs.iter().map(|&i| Value::int(i)).collect();
        let elems = s.elems();
        assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "seed {seed}: strictly increasing"
        );
        let distinct: std::collections::BTreeSet<i64> = xs.iter().copied().collect();
        assert_eq!(elems.len(), distinct.len(), "seed {seed}");
        for x in &distinct {
            assert!(s.contains(&Value::int(*x)), "seed {seed}");
        }
    }
}

#[test]
fn set_equality_ignores_order_and_multiplicity() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11);
        let xs = random_ints(&mut rng, 12, 1000);
        let a: SetValue = xs.iter().map(|&i| Value::int(i)).collect();
        let mut rev = xs.clone();
        rev.reverse();
        rev.extend(xs.iter().copied()); // duplicate everything
        let b: SetValue = rev.iter().map(|&i| Value::int(i)).collect();
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn disjointness_is_symmetric_and_consistent() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x22);
        let xs: Vec<i64> = (0..rng.gen_range(0..=8usize))
            .map(|_| rng.gen_range(0..20i64))
            .collect();
        let ys: Vec<i64> = (0..rng.gen_range(0..=8usize))
            .map(|_| rng.gen_range(0..20i64))
            .collect();
        let a: SetValue = xs.iter().map(|&i| Value::int(i)).collect();
        let b: SetValue = ys.iter().map(|&i| Value::int(i)).collect();
        assert_eq!(a.is_disjoint(&b), b.is_disjoint(&a), "seed {seed}");
        let overlap = xs.iter().any(|x| ys.contains(x));
        assert_eq!(a.is_disjoint(&b), !overlap, "seed {seed}");
    }
}

#[test]
fn insert_is_idempotent() {
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x33);
        let xs = random_ints(&mut rng, 10, 50);
        let x = rng.gen_range(0..100i64) - 50;
        let mut s: SetValue = xs.iter().map(|&i| Value::int(i)).collect();
        let first = s.insert(Value::int(x));
        let second = s.insert(Value::int(x));
        assert!(!second, "seed {seed}: second insert must be a no-op");
        assert_eq!(first, !xs.contains(&x), "seed {seed}");
        assert!(s.contains(&Value::int(x)), "seed {seed}");
    }
}

// ---- Path algebra ---------------------------------------------------------

#[test]
fn join_is_associative() {
    let alphabet = ["a", "b", "c"];
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x44);
        let a = random_small_labels(&mut rng, &alphabet, 3);
        let b = random_small_labels(&mut rng, &alphabet, 3);
        let c = random_small_labels(&mut rng, &alphabet, 3);
        let (pa, pb, pc) = (
            Path::of(a.iter().map(String::as_str)),
            Path::of(b.iter().map(String::as_str)),
            Path::of(c.iter().map(String::as_str)),
        );
        assert_eq!(
            pa.join(&pb).join(&pc),
            pa.join(&pb.join(&pc)),
            "seed {seed}"
        );
        assert_eq!(Path::empty().join(&pa), pa.clone(), "seed {seed}");
        assert_eq!(pa.join(&Path::empty()), pa, "seed {seed}");
    }
}

#[test]
fn parent_child_inverse() {
    let alphabet = ["ab", "cd", "efg", "h"];
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        let mut labels = random_small_labels(&mut rng, &alphabet, 3);
        labels.push(alphabet[rng.gen_range(0..alphabet.len())].to_string()); // non-empty
        let p = Path::of(labels.iter().map(String::as_str));
        let parent = p.parent().unwrap();
        let last = p.last().unwrap();
        assert_eq!(parent.child(last), p.clone(), "seed {seed}");
        assert_eq!(p.prefixes().count(), p.len(), "seed {seed}");
        // The prefixes are totally ordered by the prefix relation.
        let prefixes: Vec<Path> = p.prefixes().collect();
        for w in prefixes.windows(2) {
            assert!(w[0].is_proper_prefix_of(&w[1]), "seed {seed}");
        }
    }
}

#[test]
fn common_prefix_is_glb() {
    let alphabet = ["a", "b"];
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x66);
        let a = random_small_labels(&mut rng, &alphabet, 3);
        let b = random_small_labels(&mut rng, &alphabet, 3);
        let pa = Path::of(a.iter().map(String::as_str));
        let pb = Path::of(b.iter().map(String::as_str));
        let g = pa.common_prefix(&pb);
        assert!(g.is_prefix_of(&pa) && g.is_prefix_of(&pb), "seed {seed}");
        // Maximality: extending g by pa's next label is no longer a
        // common prefix.
        if g.len() < pa.len() && g.len() < pb.len() {
            let next = pa.labels()[g.len()];
            assert!(!g.child(next).is_prefix_of(&pb), "seed {seed}");
        }
        assert_eq!(pa.common_prefix(&pa), pa, "seed {seed}");
    }
}

// ---- Trie and assignment enumeration --------------------------------------

#[test]
fn single_path_assignments_equal_eval_path() {
    // For a trie with one target path, the trie-consistent assignments
    // are exactly the plain path evaluations.
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let relation = only_relation(&schema);
        let rec = schema
            .relation_type(relation)
            .unwrap()
            .element_record()
            .unwrap();
        let paths = nfd::path::typing::paths_of_record(rec);
        let inst = random_instance_no_empty(seed, &schema);
        for p in paths.iter().take(5) {
            let trie = PathTrie::new([p.clone()]);
            for elem in inst.relation(relation).unwrap().elems() {
                let v = elem.as_record().unwrap();
                let asg = assignments(v, &trie).unwrap();
                let direct = eval_path(v, p);
                assert_eq!(
                    asg.len(),
                    direct.len(),
                    "seed {seed}, path {p}: assignment count vs eval count"
                );
                let mut a: Vec<Value> = asg.iter().map(|x| x.value(0).clone()).collect();
                let mut d: Vec<Value> = direct.into_iter().cloned().collect();
                a.sort();
                d.sort();
                assert_eq!(a, d, "seed {seed}, path {p}");
            }
        }
    }
}

#[test]
fn assignment_count_factorizes_over_independent_branches() {
    // For two paths with disjoint first labels, the assignment count is
    // the product of the individual counts.
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let relation = only_relation(&schema);
        let rec = schema
            .relation_type(relation)
            .unwrap()
            .element_record()
            .unwrap();
        let paths = nfd::path::typing::paths_of_record(rec);
        let inst = random_instance_no_empty(seed + 7, &schema);
        // Find two paths with different first labels.
        let mut pair: Option<(&Path, &Path)> = None;
        'outer: for p in &paths {
            for q in &paths {
                if p.first() != q.first() {
                    pair = Some((p, q));
                    break 'outer;
                }
            }
        }
        let Some((p, q)) = pair else { continue };
        for elem in inst.relation(relation).unwrap().elems() {
            let v = elem.as_record().unwrap();
            let np = assignments(v, &PathTrie::new([p.clone()])).unwrap().len();
            let nq = assignments(v, &PathTrie::new([q.clone()])).unwrap().len();
            let both = assignments(v, &PathTrie::new([p.clone(), q.clone()]))
                .unwrap()
                .len();
            assert_eq!(both, np * nq, "seed {seed}: |{p} × {q}|");
        }
    }
}

#[test]
fn trie_targets_are_set_semantics() {
    let p = |s: &str| Path::parse(s).unwrap();
    let t1 = PathTrie::new([p("a:b"), p("a:c"), p("a:b")]);
    let t2 = PathTrie::new([p("a:c"), p("a:b")]);
    assert_eq!(t1.len(), 2);
    assert_eq!(t1.len(), t2.len());
    assert_eq!(t1.internal_node_count(), 1);
}

// ---- Armstrong closure laws ------------------------------------------------

#[test]
fn attribute_closure_laws() {
    let name = |i: usize| format!("A{i}");
    for seed in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let sigma: Vec<Fd> = (0..rng.gen_range(0..=6usize))
            .map(|_| {
                let l: Vec<String> = (0..rng.gen_range(0..3usize))
                    .map(|_| name(rng.gen_range(0..5usize)))
                    .collect();
                let rhs = name(rng.gen_range(0..5usize));
                Fd::of(l.iter().map(String::as_str), [rhs.as_str()])
            })
            .collect();
        let xs: Vec<String> = (0..rng.gen_range(0..=4usize))
            .map(|_| name(rng.gen_range(0..5usize)))
            .collect();
        let x_set = attrs(xs.iter().map(String::as_str));
        let c = closure(&sigma, &x_set);
        // Extensive: X ⊆ X⁺.
        assert!(x_set.is_subset(&c), "seed {seed}");
        // Idempotent: (X⁺)⁺ = X⁺.
        assert_eq!(closure(&sigma, &c), c.clone(), "seed {seed}");
        // Monotone: X ⊆ Y ⟹ X⁺ ⊆ Y⁺.
        let mut y_set = x_set.clone();
        y_set.insert(nfd::relational::Attribute::new(name(0)));
        assert!(c.is_subset(&closure(&sigma, &y_set)), "seed {seed}");
    }
}

// ---- Engine monotonicity ----------------------------------------------------

#[test]
fn implication_is_monotone_in_sigma() {
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAAAA);
        let sigma = random_sigma(&mut rng, &schema, 3);
        if sigma.len() < 2 {
            continue;
        }
        let smaller = &sigma[..sigma.len() - 1];
        let e_small = Engine::new(&schema, smaller).unwrap();
        let e_full = Engine::new(&schema, &sigma).unwrap();
        for _ in 0..6 {
            let Some(goal) = random_nfd(&mut rng, &schema) else {
                continue;
            };
            if e_small.implies(&goal).unwrap() {
                assert!(
                    e_full.implies(&goal).unwrap(),
                    "seed {seed}: adding dependencies removed an implication of {goal}"
                );
            }
        }
    }
}

#[test]
fn sigma_members_are_always_implied() {
    for seed in 0..60u64 {
        let schema = random_schema(seed, SchemaShape::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBBBB);
        let sigma = random_sigma(&mut rng, &schema, 3);
        let engine = Engine::new(&schema, &sigma).unwrap();
        for nfd in &sigma {
            assert!(
                engine.implies(nfd).unwrap(),
                "seed {seed}: Σ ⊬ its own member {nfd}"
            );
        }
    }
}
