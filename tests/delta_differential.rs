//! The incremental Σ-maintenance engine against from-scratch rebuilds.
//!
//! `Engine::add_dep` / `Engine::remove_dep` (`nfd::core::delta`) promise
//! *bit-identity*: after any sequence of mutations the maintained engine
//! is indistinguishable from one freshly saturated over the final Σ —
//! same pools entry by entry (order, provenance, subsumption flags),
//! same verdicts, closures, candidate keys and verified proofs. This
//! suite is the mutation census that proves it:
//!
//! * a seeded random walk of hundreds of add/remove steps per seed,
//!   asserting after *every* step against both a fresh indexed rebuild
//!   and the retained [`NaiveEngine`] oracle;
//! * multi-relation schemas, so retraction's `Given`-relabelling of
//!   untouched relations is exercised, not just the rebuilt one;
//! * both empty-set policies, and candidate keys at thread counts 1/2/8;
//! * the [`Session`] layer on top: scoped cache invalidation must keep
//!   untouched relations' closure-cache entries warm while never serving
//!   a stale answer for the mutated relation.

mod common;

use common::*;
use nfd::core::analysis;
use nfd::core::engine::Engine;
use nfd::core::nfd::parse_set;
use nfd::core::proof;
use nfd::core::{EmptySetPolicy, Nfd};
use nfd::govern::Budget;
use nfd::model::{Label, Schema};
use nfd::path::RootedPath;
use nfd::session::Session;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeds for the broad sweep; each yields a distinct schema and walk.
const SWEEP_SEEDS: std::ops::Range<u64> = 0..32;

/// Mutation steps per seed (the census floor is 200).
const STEPS_PER_SEED: usize = 200;

/// Σ size cap — past it the walk is forced to retract, so both
/// directions keep being exercised without the pool blowing up.
const SIGMA_CAP: usize = 12;

/// One random walk: mutate the maintained engine step by step, holding a
/// mirror Σ, and demand bit-identity with a fresh build and the naive
/// oracle after every step.
fn census(seed: u64, policy: EmptySetPolicy) {
    // 1–3 relations per seed: multi-relation walks exercise the
    // cross-relation `Given` relabel in `remove_dep`.
    let schema = random_multi_schema(seed, SchemaShape::default(), 1 + (seed % 3) as usize);
    let relations: Vec<Label> = schema.relation_names().collect();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xde17_a5ed) | 1);

    // Seed Σ with a couple of deps per relation so early retractions
    // have something to bite on.
    let mut sigma: Vec<Nfd> = Vec::new();
    for &rel in &relations {
        for _ in 0..2 {
            sigma.extend(random_nfd_in(&mut rng, &schema, rel));
        }
    }
    let mut maintained = Engine::with_policy(&schema, &sigma, policy.clone()).unwrap();

    for step in 0..STEPS_PER_SEED {
        // -- one mutation --------------------------------------------
        let add = sigma.is_empty() || (sigma.len() < SIGMA_CAP && rng.gen_bool(0.55));
        if add {
            let rel = relations[rng.gen_range(0..relations.len())];
            let Some(dep) = random_nfd_in(&mut rng, &schema, rel) else {
                continue;
            };
            let report = maintained.add_dep(&dep).unwrap();
            sigma.push(dep);
            assert_eq!(
                report.overdeleted, 0,
                "adds never over-delete (seed {seed} step {step})"
            );
        } else {
            let dep = sigma[rng.gen_range(0..sigma.len())].clone();
            let impact = maintained.retraction_impact(&dep).unwrap();
            let report = maintained.remove_dep(&dep).unwrap();
            assert_eq!(
                report.overdeleted, impact,
                "retraction_impact must preview the over-delete (seed {seed} step {step})"
            );
            // The engine retracts the first occurrence of an equal NFD;
            // the mirror must drop the same position.
            let pos = sigma.iter().position(|n| n == &dep).unwrap();
            sigma.remove(pos);
        }

        // -- bit-identity after every step ---------------------------
        let (naive, fresh) = build_pair(&schema, &sigma, policy.clone());
        assert_eq!(
            maintained.sigma, fresh.sigma,
            "Σ diverged (seed {seed} step {step})"
        );
        assert_eq!(
            maintained.pool_dump(),
            fresh.pool_dump(),
            "maintained pool != fresh rebuild (seed {seed} step {step})"
        );
        assert_eq!(
            fresh.pool_dump(),
            naive.pool_dump(),
            "indexed rebuild != naive oracle (seed {seed} step {step})"
        );
        maintained
            .check_invariants()
            .unwrap_or_else(|e| panic!("invariants broken (seed {seed} step {step}): {e}"));

        // -- observable agreement ------------------------------------
        for _ in 0..2 {
            let grel = relations[rng.gen_range(0..relations.len())];
            let Some(goal) = random_nfd_in(&mut rng, &schema, grel) else {
                continue;
            };
            let want = naive.implies(&goal).unwrap();
            assert_eq!(
                want,
                maintained.implies(&goal).unwrap(),
                "verdict diverged (seed {seed} step {step}) on `{goal}`"
            );
            assert_eq!(
                fresh.chain_dump(&goal).unwrap(),
                maintained.chain_dump(&goal).unwrap(),
                "chain dump diverged (seed {seed} step {step}) on `{goal}`"
            );
            assert_eq!(
                naive.closure(&goal.base, goal.lhs()).unwrap(),
                maintained.closure(&goal.base, goal.lhs()).unwrap(),
                "closure diverged (seed {seed} step {step}) on `{goal}`"
            );
            if step % 8 == 0 {
                let pf = proof::prove(&maintained, &goal).unwrap();
                assert_eq!(
                    want,
                    pf.is_some(),
                    "prove/implies disagreed (seed {seed} step {step}) on `{goal}`"
                );
                if let Some(pf) = pf {
                    proof::verify(&maintained, &pf).unwrap_or_else(|e| {
                        panic!("proof rejected (seed {seed} step {step}) on `{goal}`: {e}")
                    });
                }
            }
        }

        // -- candidate keys at every thread count, periodically ------
        if step % 16 == 0 || step + 1 == STEPS_PER_SEED {
            for &rel in &relations {
                let expected = naive.candidate_keys(rel, 2).unwrap();
                for threads in [1usize, 2, 8] {
                    assert_eq!(
                        expected,
                        analysis::candidate_keys_threaded(&maintained, rel, 2, threads).unwrap(),
                        "keys diverged (seed {seed} step {step}, {threads} threads)"
                    );
                }
            }
        }
    }
}

#[test]
fn mutation_census_forbidden() {
    for seed in SWEEP_SEEDS {
        census(seed, EmptySetPolicy::Forbidden);
    }
}

#[test]
fn mutation_census_pessimistic() {
    for seed in SWEEP_SEEDS {
        census(seed, EmptySetPolicy::pessimistic());
    }
}

/// The session layer: a mutation walk through `add_deps`/`remove_deps`
/// must stay bit-identical to a freshly compiled session, the
/// `caches_invalidated` latch must fire exactly once per mutation, and
/// warm caches must never leak a stale verdict or closure.
#[test]
fn session_mutation_walk_matches_fresh_sessions() {
    for seed in 0..8u64 {
        for policy in [EmptySetPolicy::Forbidden, EmptySetPolicy::pessimistic()] {
            let schema = random_multi_schema(seed, SchemaShape::default(), 2);
            let relations: Vec<Label> = schema.relation_names().collect();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5e55_10f1) | 1);
            let mut sigma: Vec<Nfd> = Vec::new();
            for &rel in &relations {
                sigma.extend(random_nfd_in(&mut rng, &schema, rel));
            }
            let mut session =
                Session::with_budget(&schema, &sigma, policy.clone(), Budget::standard()).unwrap();
            let budget = Budget::standard();

            for step in 0..40usize {
                let add = sigma.is_empty() || (sigma.len() < SIGMA_CAP && rng.gen_bool(0.55));
                if add {
                    let rel = relations[rng.gen_range(0..relations.len())];
                    let Some(dep) = random_nfd_in(&mut rng, &schema, rel) else {
                        continue;
                    };
                    session.add_deps(std::slice::from_ref(&dep)).unwrap();
                    sigma.push(dep);
                } else {
                    let dep = sigma[rng.gen_range(0..sigma.len())].clone();
                    session.remove_deps(std::slice::from_ref(&dep)).unwrap();
                    let pos = sigma.iter().position(|n| n == &dep).unwrap();
                    sigma.remove(pos);
                }

                let fresh =
                    Session::with_budget(&schema, &sigma, policy.clone(), Budget::standard())
                        .unwrap();
                assert_eq!(
                    session.engine().pool_dump(),
                    fresh.engine().pool_dump(),
                    "session pool != fresh session (seed {seed} step {step})"
                );

                // Warm caches cannot change answers, and the mutation
                // latch rides on exactly one decision.
                let grel = relations[rng.gen_range(0..relations.len())];
                let Some(goal) = random_nfd_in(&mut rng, &schema, grel) else {
                    continue;
                };
                let d = session.implies_with(&goal, &budget).unwrap();
                assert!(
                    d.caches_invalidated,
                    "first decision after a mutation must carry the latch (seed {seed} step {step})"
                );
                let want = fresh.implies_with(&goal, &budget).unwrap();
                assert_eq!(
                    verdict_bool(&want.verdict),
                    verdict_bool(&d.verdict),
                    "session verdict diverged (seed {seed} step {step}) on `{goal}`"
                );
                let d2 = session.implies_with(&goal, &budget).unwrap();
                assert!(
                    !d2.caches_invalidated,
                    "the latch is one-shot (seed {seed} step {step})"
                );
                for &rel in &relations {
                    let base = RootedPath::relation_only(rel);
                    assert_eq!(
                        fresh.closure(&base, &[]).unwrap(),
                        session.closure(&base, &[]).unwrap(),
                        "closure diverged (seed {seed} step {step}) on `{base}`"
                    );
                }
            }
        }
    }
}

/// The census through every `--engine` preference: tier routing (naive
/// scan, indexed kernel, dense matrix, and the auto router with its
/// promotion counters) must not change a single post-mutation answer.
/// Each goal is asked twice so auto's mid-walk promotions and the dense
/// matrix rebuilt after a scoped invalidation both land inside the
/// asserted region.
#[test]
fn mutation_census_under_every_engine_preference() {
    use nfd::core::{Tier, TierPreference};

    for pref in [
        TierPreference::Auto,
        TierPreference::Fixed(Tier::Naive),
        TierPreference::Fixed(Tier::Indexed),
        TierPreference::Fixed(Tier::Dense),
    ] {
        for seed in 0..4u64 {
            let schema = random_multi_schema(seed, SchemaShape::default(), 2);
            let relations: Vec<Label> = schema.relation_names().collect();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x7137_ee1d) | 1);
            let mut sigma: Vec<Nfd> = Vec::new();
            for &rel in &relations {
                sigma.extend(random_nfd_in(&mut rng, &schema, rel));
            }
            let policy = EmptySetPolicy::Forbidden;
            let budget = Budget::standard();
            let mut session =
                Session::with_tiers(&schema, &sigma, policy.clone(), Budget::standard(), pref)
                    .unwrap();

            for step in 0..30usize {
                let add = sigma.is_empty() || (sigma.len() < SIGMA_CAP && rng.gen_bool(0.55));
                if add {
                    let rel = relations[rng.gen_range(0..relations.len())];
                    let Some(dep) = random_nfd_in(&mut rng, &schema, rel) else {
                        continue;
                    };
                    session.add_deps(std::slice::from_ref(&dep)).unwrap();
                    sigma.push(dep);
                } else {
                    let dep = sigma[rng.gen_range(0..sigma.len())].clone();
                    session.remove_deps(std::slice::from_ref(&dep)).unwrap();
                    let pos = sigma.iter().position(|n| n == &dep).unwrap();
                    sigma.remove(pos);
                }

                // The reference is tier-free: a plain fresh session over
                // the mirror Σ.
                let fresh =
                    Session::with_budget(&schema, &sigma, policy.clone(), Budget::standard())
                        .unwrap();
                assert_eq!(
                    session.engine().pool_dump(),
                    fresh.engine().pool_dump(),
                    "pool diverged under {pref:?} (seed {seed} step {step})"
                );
                let grel = relations[rng.gen_range(0..relations.len())];
                let Some(goal) = random_nfd_in(&mut rng, &schema, grel) else {
                    continue;
                };
                let want = verdict_bool(&fresh.implies_with(&goal, &budget).unwrap().verdict);
                for ask in 0..2 {
                    let got = session.implies_with(&goal, &budget).unwrap();
                    assert_eq!(
                        want,
                        verdict_bool(&got.verdict),
                        "verdict diverged under {pref:?} tier {:?} ask {ask} \
                         (seed {seed} step {step}) on `{goal}`",
                        got.tier
                    );
                }
                assert_eq!(
                    fresh.closure(&goal.base, goal.lhs()).unwrap(),
                    session.closure(&goal.base, goal.lhs()).unwrap(),
                    "closure diverged under {pref:?} (seed {seed} step {step})"
                );
            }
        }
    }
}

/// Scoped invalidation, pinned: mutating relation `R` must drop only
/// `R`'s closure-cache entries — `S`'s stay warm (cache hits keep
/// accruing) — while `R` itself recomputes rather than serving the
/// pre-mutation closure.
#[test]
fn scoped_invalidation_keeps_untouched_relations_warm() {
    let schema = Schema::parse(
        "R : { <A: int, B: {<C: int>}, D: int> };
         S : { <P: int, Q: int, T: int> };",
    )
    .unwrap();
    let sigma = parse_set(&schema, "R:[A -> B:C]; S:[P -> Q]; S:[Q -> T];").unwrap();
    let mut session = Session::new(&schema, &sigma).unwrap();

    let r_base = RootedPath::parse("R").unwrap();
    let s_base = RootedPath::parse("S").unwrap();
    let r_lhs = [nfd::path::Path::parse("A").unwrap()];
    let s_lhs = [nfd::path::Path::parse("P").unwrap()];

    // Warm both relations and prove the closure path is cached at all:
    // the repeat queries must register hits.
    for _ in 0..2 {
        session.closure(&r_base, &r_lhs).unwrap();
        session.closure(&s_base, &s_lhs).unwrap();
    }
    let warm_hits = session.cache_stats().hits;
    assert!(warm_hits > 0, "repeat closures must hit the cache");

    // Mutate R only. S's entry must survive (its next query is a hit);
    // R must recompute and pick up the new dependency.
    let added = Nfd::parse(&schema, "R:[A -> D]").unwrap();
    session.add_deps(std::slice::from_ref(&added)).unwrap();

    let s_closure = session.closure(&s_base, &s_lhs).unwrap();
    assert!(
        session.cache_stats().hits > warm_hits,
        "S's cache entry was dropped by a mutation that never touched S: {:?}",
        session.cache_stats()
    );

    let r_closure = session.closure(&r_base, &r_lhs).unwrap();
    assert!(
        r_closure.contains(&RootedPath::parse("R:D").unwrap()),
        "R served a stale pre-mutation closure: {r_closure:?}"
    );

    // Both answers match a session compiled from scratch over the new Σ.
    let mut full: Vec<Nfd> = sigma.clone();
    full.push(added);
    let fresh = Session::new(&schema, &full).unwrap();
    assert_eq!(fresh.closure(&r_base, &r_lhs).unwrap(), r_closure);
    assert_eq!(fresh.closure(&s_base, &s_lhs).unwrap(), s_closure);
}

/// Retracting an NFD that is not in Σ fails cleanly: typed error, no Σ
/// change, and the batch-prefix contract (`remove_deps` applies deps in
/// order until the first failure).
#[test]
fn failed_retraction_leaves_the_session_intact() {
    let schema = course_schema();
    let sigma = course_sigma(&schema);
    let mut session = Session::new(&schema, &sigma).unwrap();
    let absent = Nfd::parse(&schema, "Course:[time -> books]").unwrap();
    let present = Nfd::parse(&schema, "Course:[cnum -> time]").unwrap();

    let err = session
        .remove_deps(std::slice::from_ref(&absent))
        .unwrap_err();
    assert!(
        err.to_string().contains("not in"),
        "typed not-in-Σ error, got: {err}"
    );
    assert_eq!(
        session.engine().pool_dump(),
        Session::new(&schema, &sigma).unwrap().engine().pool_dump(),
        "a failed retraction must not change the pool"
    );

    // Prefix semantics: [present, absent] applies the first, then stops.
    let err = session.remove_deps(&[present.clone(), absent]).unwrap_err();
    assert!(err.to_string().contains("not in"));
    let remaining: Vec<Nfd> = sigma.iter().filter(|n| **n != present).cloned().collect();
    assert_eq!(
        session.engine().pool_dump(),
        Session::new(&schema, &remaining)
            .unwrap()
            .engine()
            .pool_dump(),
        "the prefix before the failure must have been applied"
    );
}
