//! Baseline differential: on flat (1NF) schemas, NFDs *are* classical
//! functional dependencies, so the NFD implication engine must agree with
//! the independent Armstrong/attribute-closure implementation on every
//! instance of the problem.

mod common;

use nfd::core::engine::Engine;
use nfd::core::Nfd;
use nfd::model::{Label, Schema};
use nfd::path::{Path, RootedPath};
use nfd::relational::{attrs, closure, implies, AttrSet, Fd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A flat schema with `n` int attributes `a0..a{n-1}`, plus the matching
/// attribute universe.
fn flat_schema(n: usize, tag: u64) -> (Schema, Vec<String>) {
    let names: Vec<String> = (0..n).map(|i| format!("a{tag}_{i}")).collect();
    let fields = names
        .iter()
        .map(|s| format!("{s}: int"))
        .collect::<Vec<_>>()
        .join(", ");
    let schema = Schema::parse(&format!("F{tag} : {{<{fields}>}};")).unwrap();
    (schema, names)
}

fn to_nfd(_schema: &Schema, relation: Label, fd: &Fd) -> Vec<Nfd> {
    // NFDs have a single RHS path; split the FD.
    fd.split()
        .into_iter()
        .map(|f| {
            let lhs: Vec<Path> = f.lhs.iter().map(|a| Path::of([a.0.as_str()])).collect();
            let rhs = Path::of([f.rhs.iter().next().unwrap().0.as_str()]);
            Nfd::new(RootedPath::relation_only(relation), lhs, rhs).unwrap()
        })
        .collect()
}

fn random_fd(rng: &mut StdRng, names: &[String]) -> Fd {
    let pick = |rng: &mut StdRng| names[rng.gen_range(0..names.len())].clone();
    let lhs: AttrSet = (0..rng.gen_range(0..=2usize))
        .map(|_| nfd::relational::Attribute::new(pick(rng)))
        .collect();
    let rhs: AttrSet = [nfd::relational::Attribute::new(pick(rng))]
        .into_iter()
        .collect();
    Fd::new(lhs, rhs)
}

#[test]
fn engines_agree_on_flat_implication() {
    let mut implied_count = 0usize;
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(3..=6);
        let (schema, names) = flat_schema(n, seed);
        let relation = schema.relation_names().next().unwrap();
        let sigma_fd: Vec<Fd> = (0..rng.gen_range(1..=4))
            .map(|_| random_fd(&mut rng, &names))
            .collect();
        let sigma_nfd: Vec<Nfd> = sigma_fd
            .iter()
            .flat_map(|fd| to_nfd(&schema, relation, fd))
            .collect();
        let engine = Engine::new(&schema, &sigma_nfd).unwrap();
        for _ in 0..8 {
            let goal_fd = random_fd(&mut rng, &names);
            let by_armstrong = implies(&sigma_fd, &goal_fd);
            for goal_nfd in to_nfd(&schema, relation, &goal_fd) {
                let by_engine = engine.implies(&goal_nfd).unwrap();
                // Split FDs: the NFD engine answers per split; combine.
                // (Each split answer must match Armstrong on that split.)
                let single = Fd::new(
                    goal_fd.lhs.clone(),
                    [nfd::relational::Attribute::new(
                        goal_nfd.rhs.first().unwrap().as_str(),
                    )]
                    .into_iter()
                    .collect(),
                );
                assert_eq!(
                    by_engine,
                    implies(&sigma_fd, &single),
                    "seed {seed}: engines disagree on {goal_nfd}"
                );
            }
            if by_armstrong {
                implied_count += 1;
            }
        }
    }
    assert!(
        implied_count > 100,
        "only {implied_count} implied goals seen"
    );
}

/// The NFD closure of a flat LHS is exactly the attribute closure.
#[test]
fn closures_coincide_on_flat_schemas() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1A7);
        let n = rng.gen_range(3..=6);
        let (schema, names) = flat_schema(n, seed + 10_000);
        let relation = schema.relation_names().next().unwrap();
        let sigma_fd: Vec<Fd> = (0..rng.gen_range(1..=4))
            .map(|_| random_fd(&mut rng, &names))
            .collect();
        let sigma_nfd: Vec<Nfd> = sigma_fd
            .iter()
            .flat_map(|fd| to_nfd(&schema, relation, fd))
            .collect();
        let engine = Engine::new(&schema, &sigma_nfd).unwrap();

        let x_names: Vec<String> = (0..rng.gen_range(0..=2usize))
            .map(|_| names[rng.gen_range(0..names.len())].clone())
            .collect();
        let x_paths: Vec<Path> = x_names.iter().map(|s| Path::of([s.as_str()])).collect();
        let by_engine: std::collections::BTreeSet<String> = engine
            .closure(&RootedPath::relation_only(relation), &x_paths)
            .unwrap()
            .into_iter()
            .map(|r| r.path.to_string())
            .collect();
        let by_armstrong: std::collections::BTreeSet<String> =
            closure(&sigma_fd, &attrs(x_names.iter().map(String::as_str)))
                .into_iter()
                .map(|a| a.0)
                .collect();
        assert_eq!(by_engine, by_armstrong, "seed {seed}: closures differ");
    }
}

/// Candidate keys found through the NFD engine (brute force over LHS
/// subsets whose closure covers every attribute) match the relational
/// algorithm.
#[test]
fn candidate_keys_match() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x005E_ED0Fu64);
        let n = rng.gen_range(3..=5);
        let (schema, names) = flat_schema(n, seed + 20_000);
        let relation = schema.relation_names().next().unwrap();
        let sigma_fd: Vec<Fd> = (0..rng.gen_range(1..=3))
            .map(|_| random_fd(&mut rng, &names))
            .collect();
        let sigma_nfd: Vec<Nfd> = sigma_fd
            .iter()
            .flat_map(|fd| to_nfd(&schema, relation, fd))
            .collect();
        let engine = Engine::new(&schema, &sigma_nfd).unwrap();

        // Brute-force minimal superkeys via the NFD engine.
        let universe: AttrSet = attrs(names.iter().map(String::as_str));
        let mut engine_keys: Vec<AttrSet> = Vec::new();
        for mask in 0u32..(1 << n) {
            let subset: Vec<&String> = names
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, s)| s)
                .collect();
            let paths: Vec<Path> = subset.iter().map(|s| Path::of([s.as_str()])).collect();
            let cl = engine
                .closure(&RootedPath::relation_only(relation), &paths)
                .unwrap();
            if cl.len() == n {
                let k: AttrSet = attrs(subset.iter().map(|s| s.as_str()));
                if !engine_keys.iter().any(|e| e.is_subset(&k)) {
                    engine_keys.retain(|e| !k.is_subset(e));
                    engine_keys.push(k);
                }
            }
        }
        engine_keys.sort();
        let expected = nfd::relational::candidate_keys(&universe, &sigma_fd);
        assert_eq!(engine_keys, expected, "seed {seed}: candidate keys differ");
    }
}
