//! Exhaustive verification at small scale: over a fixed small nested
//! schema, enumerate EVERY well-formed NFD (all bases, all LHS subsets,
//! all RHS paths), and for every Σ of size 1 — and a dense sample of size
//! 2 — and every goal:
//!
//! * the axiomatic engine and the tableau chase must agree, and
//! * whenever the engine refuses, the Appendix A construction must
//!   produce a concrete witness (Lemma A.1), checked semantically.
//!
//! Unlike the randomized suites, this covers the complete space at its
//! scale: no sampling gaps. The sweeps shard their outer Σ loop across
//! `nfd::par` workers (each Σ is an independent problem), which is what
//! lets this suite run one schema-size notch deeper than it used to —
//! the nested set now has two element attributes, growing the census from
//! 46 to 88 NFDs and the single-dependency sweep from 2 116 to 7 744
//! implication problems (the bound recorded in EXPERIMENTS.md).

mod common;

use nfd::chase;
use nfd::core::engine::Engine;
use nfd::core::{construct, satisfy, Nfd};
use nfd::model::Schema;
use nfd::path::{Path, RootedPath};

fn small_schema() -> Schema {
    Schema::parse("R : { <A: int, B: {<C: int, E: int>}, D: int> };").unwrap()
}

/// Every well-formed NFD over the small schema with |LHS| ≤ 2.
fn all_nfds(schema: &Schema) -> Vec<Nfd> {
    let mut out = Vec::new();
    let bases = [
        RootedPath::parse("R").unwrap(),
        RootedPath::parse("R:B").unwrap(),
    ];
    for base in bases {
        let rec = nfd::path::typing::base_element_record(schema, &base).unwrap();
        let paths = nfd::path::typing::paths_of_record(rec);
        let mut lhs_sets: Vec<Vec<Path>> = vec![vec![]];
        for (i, p) in paths.iter().enumerate() {
            lhs_sets.push(vec![p.clone()]);
            for q in &paths[i + 1..] {
                lhs_sets.push(vec![p.clone(), q.clone()]);
            }
        }
        for lhs in &lhs_sets {
            for rhs in &paths {
                out.push(Nfd::new(base.clone(), lhs.clone(), rhs.clone()).unwrap());
            }
        }
    }
    out
}

#[test]
fn schema_nfd_census() {
    let schema = small_schema();
    let nfds = all_nfds(&schema);
    // Base R: 5 paths (A, B, D, B:C, B:E), LHS subsets of size ≤2:
    // 1+5+10=16, so 80 NFDs; base R:B: 2 paths (C, E), 4 LHS sets,
    // 8 NFDs. Total 88.
    assert_eq!(nfds.len(), 88);
}

/// Every (single-dependency Σ, goal) pair: engine ⇔ chase, and Lemma A.1
/// witnesses for every refusal. 88 × 88 = 7 744 implication problems,
/// sharded one Σ per work item.
#[test]
fn exhaustive_single_dependency() {
    let schema = small_schema();
    let nfds = all_nfds(&schema);
    let base_r = RootedPath::parse("R").unwrap();
    let counts = nfd::par::map_indexed(nfds.len(), 0, |si| {
        let sigma_member = &nfds[si];
        let sigma = vec![sigma_member.clone()];
        let engine = Engine::new(&schema, &sigma).unwrap();
        let (mut implied, mut refused) = (0usize, 0usize);
        for goal in &nfds {
            let by_engine = engine.implies(goal).unwrap();
            let by_chase = chase::implies_by_chase(&schema, &sigma, goal).unwrap();
            assert_eq!(
                by_engine, by_chase,
                "Σ = {{{sigma_member}}}, goal {goal}: engine {by_engine}, chase {by_chase}"
            );
            if by_engine {
                implied += 1;
                continue;
            }
            refused += 1;
            // Lemma A.1 witness for goals based at R (the construction's
            // base); goals at R:B are covered through their simple forms,
            // which are base-R goals enumerated separately.
            if goal.base == base_r {
                let built = construct::counterexample(&engine, &goal.base, goal.lhs()).unwrap();
                assert!(
                    satisfy::satisfies_all(&schema, &built.instance, &sigma).unwrap(),
                    "witness violates Σ for Σ = {{{sigma_member}}}, goal {goal}"
                );
                assert!(
                    !satisfy::check(&schema, &built.instance, goal)
                        .unwrap()
                        .holds,
                    "witness fails to violate the refused goal {goal} under {{{sigma_member}}}"
                );
            }
        }
        (implied, refused)
    });
    let implied: usize = counts.iter().map(|(i, _)| i).sum();
    let refused: usize = counts.iter().map(|(_, r)| r).sum();
    assert_eq!(implied + refused, nfds.len() * nfds.len());
    // Sanity on the census: both classes are well populated.
    assert!(implied > 400, "only {implied} implied pairs");
    assert!(refused > 4000, "only {refused} refused pairs");
}

/// A dense sample of two-dependency Σ sets (every pair where both members
/// share the base R), engine ⇔ chase on a spread of goals, sharded one
/// first-member per work item.
#[test]
fn exhaustive_pairs_engine_vs_chase() {
    let schema = small_schema();
    let nfds: Vec<Nfd> = all_nfds(&schema)
        .into_iter()
        .filter(|n| n.base.path.is_empty() && !n.is_trivial())
        .collect();
    // Goals: every single-LHS NFD at base R.
    let goals: Vec<&Nfd> = nfds.iter().filter(|n| n.lhs().len() == 1).collect();
    let counts = nfd::par::map_indexed(nfds.len(), 0, |i| {
        let s1 = &nfds[i];
        let mut checked = 0usize;
        // Stride the second member to keep the square tractable while
        // still covering every member in both roles.
        for s2 in nfds.iter().skip(i % 2).step_by(2) {
            let sigma = vec![s1.clone(), s2.clone()];
            let engine = Engine::new(&schema, &sigma).unwrap();
            for goal in goals.iter().step_by(2) {
                let by_engine = engine.implies(goal).unwrap();
                let by_chase = chase::implies_by_chase(&schema, &sigma, goal).unwrap();
                assert_eq!(by_engine, by_chase, "Σ = {{{s1}; {s2}}}, goal {goal}");
                checked += 1;
            }
        }
        checked
    });
    let checked: usize = counts.iter().sum();
    assert!(checked > 12_000, "only {checked} pairs checked");
}
