//! Exhaustive verification at small scale: over a fixed small nested
//! schema, enumerate EVERY well-formed NFD (all bases, all LHS subsets,
//! all RHS paths), and for every Σ of size 1 — and a dense sample of size
//! 2 — and every goal:
//!
//! * the axiomatic engine and the tableau chase must agree, and
//! * whenever the engine refuses, the Appendix A construction must
//!   produce a concrete witness (Lemma A.1), checked semantically.
//!
//! Unlike the randomized suites, this covers the complete space at its
//! scale: no sampling gaps.

mod common;

use nfd::chase;
use nfd::core::engine::Engine;
use nfd::core::{construct, satisfy, Nfd};
use nfd::model::Schema;
use nfd::path::{Path, RootedPath};

fn small_schema() -> Schema {
    Schema::parse("R : { <A: int, B: {<C: int>}, D: int> };").unwrap()
}

/// Every well-formed NFD over the small schema with |LHS| ≤ 2.
fn all_nfds(schema: &Schema) -> Vec<Nfd> {
    let mut out = Vec::new();
    let bases = [
        RootedPath::parse("R").unwrap(),
        RootedPath::parse("R:B").unwrap(),
    ];
    for base in bases {
        let rec = nfd::path::typing::base_element_record(schema, &base).unwrap();
        let paths = nfd::path::typing::paths_of_record(rec);
        let mut lhs_sets: Vec<Vec<Path>> = vec![vec![]];
        for (i, p) in paths.iter().enumerate() {
            lhs_sets.push(vec![p.clone()]);
            for q in &paths[i + 1..] {
                lhs_sets.push(vec![p.clone(), q.clone()]);
            }
        }
        for lhs in &lhs_sets {
            for rhs in &paths {
                out.push(Nfd::new(base.clone(), lhs.clone(), rhs.clone()).unwrap());
            }
        }
    }
    out
}

#[test]
fn schema_nfd_census() {
    let schema = small_schema();
    let nfds = all_nfds(&schema);
    // Base R: 4 paths (A, B, D, B:C), LHS subsets of size ≤2: 1+4+6=11,
    // so 44 NFDs; base R:B: 1 path (C), 2 LHS sets, 2 NFDs. Total 46.
    assert_eq!(nfds.len(), 46);
}

/// Every (single-dependency Σ, goal) pair: engine ⇔ chase, and Lemma A.1
/// witnesses for every refusal. 46 × 46 = 2 116 implication problems.
#[test]
fn exhaustive_single_dependency() {
    let schema = small_schema();
    let nfds = all_nfds(&schema);
    let base_r = RootedPath::parse("R").unwrap();
    let mut implied = 0usize;
    let mut refused = 0usize;
    for sigma_member in &nfds {
        let sigma = vec![sigma_member.clone()];
        let engine = Engine::new(&schema, &sigma).unwrap();
        for goal in &nfds {
            let by_engine = engine.implies(goal).unwrap();
            let by_chase = chase::implies_by_chase(&schema, &sigma, goal).unwrap();
            assert_eq!(
                by_engine, by_chase,
                "Σ = {{{sigma_member}}}, goal {goal}: engine {by_engine}, chase {by_chase}"
            );
            if by_engine {
                implied += 1;
                continue;
            }
            refused += 1;
            // Lemma A.1 witness for goals based at R (the construction's
            // base); goals at R:B are covered through their simple forms,
            // which are base-R goals enumerated separately.
            if goal.base == base_r {
                let built = construct::counterexample(&engine, &goal.base, goal.lhs()).unwrap();
                assert!(
                    satisfy::satisfies_all(&schema, &built.instance, &sigma).unwrap(),
                    "witness violates Σ for Σ = {{{sigma_member}}}, goal {goal}"
                );
                assert!(
                    !satisfy::check(&schema, &built.instance, goal)
                        .unwrap()
                        .holds,
                    "witness fails to violate the refused goal {goal} under {{{sigma_member}}}"
                );
            }
        }
    }
    // Sanity on the census: both classes are well populated.
    assert!(implied > 200, "only {implied} implied pairs");
    assert!(refused > 1000, "only {refused} refused pairs");
}

/// A dense sample of two-dependency Σ sets (every pair where both members
/// share the base R), engine ⇔ chase on a spread of goals.
#[test]
fn exhaustive_pairs_engine_vs_chase() {
    let schema = small_schema();
    let nfds: Vec<Nfd> = all_nfds(&schema)
        .into_iter()
        .filter(|n| n.base.path.is_empty() && !n.is_trivial())
        .collect();
    // Goals: every single-LHS NFD at base R.
    let goals: Vec<&Nfd> = nfds.iter().filter(|n| n.lhs().len() == 1).collect();
    let mut checked = 0usize;
    for (i, s1) in nfds.iter().enumerate() {
        // Stride the second member to keep the square tractable while
        // still covering every member in both roles.
        for s2 in nfds.iter().skip(i % 2).step_by(2) {
            let sigma = vec![s1.clone(), s2.clone()];
            let engine = Engine::new(&schema, &sigma).unwrap();
            for goal in goals.iter().step_by(2) {
                let by_engine = engine.implies(goal).unwrap();
                let by_chase = chase::implies_by_chase(&schema, &sigma, goal).unwrap();
                assert_eq!(by_engine, by_chase, "Σ = {{{s1}; {s2}}}, goal {goal}");
                checked += 1;
            }
        }
    }
    assert!(checked > 2000, "only {checked} pairs checked");
}
