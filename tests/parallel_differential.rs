//! Differential lockdown of the parallel batch executor.
//!
//! `Session::implies_batch` promises results bit-identical to a
//! sequential `implies_with` loop at every thread count — verdicts,
//! cascade logs, exhaustion reports and proof output alike, including
//! under starved budgets. These tests hold it to that promise over
//! seeded random `(Schema, Σ, goals)` batches, so any scheduling
//! dependence shows up as a reproducible seed.

mod common;

use common::{random_nfd, random_schema, random_sigma, SchemaShape};
use nfd::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A seeded random problem: schema, Σ, and a goal batch (goals are drawn
/// from the same generator as Σ, so some are implied, some not).
fn problem(seed: u64, goals: usize) -> (Schema, Vec<Nfd>, Vec<Nfd>) {
    let schema = random_schema(seed, SchemaShape::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
    let sigma = random_sigma(&mut rng, &schema, 6);
    let batch: Vec<Nfd> = (0..goals * 2)
        .filter_map(|_| random_nfd(&mut rng, &schema))
        .take(goals)
        .collect();
    (schema, sigma, batch)
}

#[test]
fn batch_equals_sequential_loop_on_random_problems() {
    for seed in 0..25u64 {
        let (schema, sigma, goals) = problem(seed, 12);
        let session = Session::new(&schema, &sigma).expect("generated Σ compiles");
        let budget = Budget::standard();
        let sequential: Vec<Result<Decision, CoreError>> = goals
            .iter()
            .map(|g| {
                session
                    .implies_with(g, &budget)
                    .map(Ok)
                    .expect("seed {seed}")
            })
            .collect();
        for threads in THREAD_COUNTS {
            let batch = session
                .implies_batch(&goals, &budget, threads)
                .expect("batch runs");
            assert_eq!(
                batch.decisions, sequential,
                "seed {seed}, threads {threads}: batch deviates from the sequential loop"
            );
            assert_eq!(batch.first_exhausted, None, "seed {seed}");
        }
    }
}

#[test]
fn starved_batches_agree_at_every_thread_count() {
    // Small counter budgets starve the cascade at scheduling-independent
    // points; the whole BatchDecision (verdicts, attempts, reports, the
    // cutoff index) must not notice the thread count.
    for seed in 0..25u64 {
        let (schema, sigma, goals) = problem(seed, 12);
        let session = Session::new(&schema, &sigma).expect("generated Σ compiles");
        for cap in [1u64, 8, 64, 512] {
            let budget = Budget::limited(cap);
            let reference = session
                .implies_batch(&goals, &budget, 1)
                .expect("batch runs");
            for threads in THREAD_COUNTS {
                let batch = session
                    .implies_batch(&goals, &budget, threads)
                    .expect("batch runs");
                assert_eq!(
                    batch, reference,
                    "seed {seed}, cap {cap}, threads {threads}: starved batch deviates"
                );
            }
        }
    }
}

#[test]
fn exhaustion_never_flips_a_verdict() {
    // Whatever a starved batch answers must match the generously budgeted
    // ground truth; running out of resources may only ever produce
    // `Exhausted`, never a wrong `Implied`/`NotImplied`.
    for seed in 0..15u64 {
        let (schema, sigma, goals) = problem(seed, 10);
        let session = Session::new(&schema, &sigma).expect("generated Σ compiles");
        let truth: Vec<Option<bool>> = goals
            .iter()
            .map(|g| {
                session
                    .implies_with(g, &Budget::standard())
                    .expect("standard budget decides")
                    .verdict
                    .as_bool()
            })
            .collect();
        for cap in [1u64, 16, 256] {
            for threads in THREAD_COUNTS {
                let batch = session
                    .implies_batch(&goals, &Budget::limited(cap), threads)
                    .expect("batch runs");
                for (i, d) in batch.decisions.iter().enumerate() {
                    let d = d.as_ref().expect("no faults injected, no goal fails");
                    if let Some(answer) = d.verdict.as_bool() {
                        assert_eq!(
                            Some(answer),
                            truth[i],
                            "seed {seed}, cap {cap}, threads {threads}, goal {i}: \
                             a starved run answered differently from ground truth"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn proofs_are_identical_under_parallel_querying() {
    // Proof extraction runs over the shared saturated engine; hammering
    // it from a worker pool must reproduce the sequential certificates
    // step for step.
    for seed in 0..10u64 {
        let (schema, sigma, goals) = problem(seed, 10);
        let session = Session::new(&schema, &sigma).expect("generated Σ compiles");
        let sequential: Vec<Option<nfd::core::proof::Proof>> = goals
            .iter()
            .map(|g| session.prove(g).expect("prove runs"))
            .collect();
        for threads in [2usize, 8] {
            let parallel = nfd::par::map_indexed(goals.len(), threads, |i| {
                session.prove(&goals[i]).expect("prove runs")
            });
            assert_eq!(
                parallel, sequential,
                "seed {seed}, threads {threads}: proofs deviate"
            );
        }
        // Every certificate replays against the session.
        for pf in sequential.into_iter().flatten() {
            session.verify(&pf).expect("certificate verifies");
        }
    }
}

#[test]
fn batch_over_the_paper_example_is_stable() {
    let schema = common::course_schema();
    let sigma = common::course_sigma(&schema);
    let session = Session::new(&schema, &sigma).unwrap();
    let goals: Vec<Nfd> = [
        "Course:[time, students:sid -> books]",
        "Course:[cnum -> time]",
        "Course:[time -> cnum]",
        "Course:[books:isbn -> books:title]",
        "Course:[books:title -> books:isbn]",
        "Course:[cnum -> students]",
    ]
    .iter()
    .map(|t| Nfd::parse(&schema, t).unwrap())
    .collect();
    let budget = Budget::standard();
    let reference = session.implies_batch(&goals, &budget, 1).unwrap();
    assert_eq!(reference.implied_count(), 4);
    assert_eq!(reference.first_exhausted, None);
    for threads in [0usize, 2, 3, 8] {
        assert_eq!(
            session.implies_batch(&goals, &budget, threads).unwrap(),
            reference,
            "threads = {threads}"
        );
    }
}
