//! Chaos tests for the serve layer — the ISSUE's acceptance criterion
//! lives here: with failpoints armed in the dispatch path, a panicked
//! request yields an `ERR` line on that connection only; the server
//! then answers a fresh differential sweep bit-identically to a direct
//! in-process [`Session`]; and an overloaded server sheds with `BUSY`
//! instead of hanging or crashing.
//!
//! Compiled only with `--features failpoints`; the registry is
//! process-global, so run armed suites with `--test-threads=1` (the CI
//! chaos job does) and take the serial lock in every test.

#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use nfd::faults::{self, FaultAction};
use nfd::prelude::*;
use nfd::serve::{Registry, RegistryConfig};

fn serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn course_sources() -> (String, String) {
    let strip = |src: String| {
        src.lines()
            .map(|line| line.split('#').next().unwrap_or(""))
            .flat_map(str::split_whitespace)
            .collect::<Vec<_>>()
            .join(" ")
    };
    (
        strip(std::fs::read_to_string("examples/data/course.nfds").expect("course.nfds")),
        strip(std::fs::read_to_string("examples/data/course.nfdd").expect("course.nfdd")),
    )
}

fn start(
    registry_cfg: RegistryConfig,
    server_cfg: ServerConfig,
) -> (SocketAddr, JoinHandle<ServerStats>) {
    let server =
        Server::bind("127.0.0.1:0", server_cfg, Registry::new(registry_cfg)).expect("bind");
    let addr = server.local_addr().expect("addr");
    (addr, std::thread::spawn(move || server.run().expect("run")))
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        idle_poll_ms: 5,
        ..ServerConfig::default()
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> String {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("recv");
        resp.trim_end().to_string()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

const SWEEP: [&str; 8] = [
    "Course:[time, students:sid -> books]",
    "Course:[students:sid -> books]",
    "Course:[cnum -> time]",
    "Course:[time -> cnum]",
    "Course:[cnum -> books:title]",
    "Course:[books:isbn -> books:title]",
    "Course:students:[sid -> grade]",
    "Course:[students:sid -> students:age]",
];

/// Nothing armed: one pass through the protocol reaches every serve
/// failpoint site (the census discipline from `chaos_harness.rs`).
#[test]
fn census_reaches_every_serve_site() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut c = Client::connect(addr);
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    assert_eq!(c.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");
    // A mutation drives the epoch-swap write path.
    assert!(c
        .ask("ADDDEP course Course:[time -> cnum]")
        .starts_with("OK added"));
    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");

    let hit: Vec<String> = faults::sites_hit().into_iter().map(|(n, _)| n).collect();
    for site in [
        "serve::accept",
        "serve::parse",
        "serve::dispatch",
        "serve::respond",
        "serve::tenant_query",
        "serve::shared_cache",
        "serve::epoch_swap",
    ] {
        assert!(
            hit.iter().any(|n| n == site),
            "census missed `{site}`: {hit:?}"
        );
    }
    faults::reset();
}

/// THE acceptance test. An armed dispatch-path panic costs exactly one
/// request one `ERR` line on one connection; the server, the other
/// connections, and the tenant's warm session all survive, and a fresh
/// differential sweep is then bit-identical to a direct in-process
/// session.
#[test]
fn dispatch_panic_is_contained_and_sweep_stays_bit_identical() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let schema = Schema::parse(&schema_src).expect("schema");
    let sigma = nfd::core::nfd::parse_set(&schema, &deps_src).expect("deps");
    let direct = Session::new(&schema, &sigma).expect("direct session");

    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    assert_eq!(
        a.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    // Arm: the next dispatched request panics inside the server.
    faults::configure_limited("serve::dispatch", 1, FaultAction::Panic);
    let err = a.ask("IMPLIES course Course:[cnum -> time]");
    assert!(
        err.starts_with("ERR contained panic:") && err.contains("serve::dispatch"),
        "the poisoned request answers ERR on its own connection: {err}"
    );

    // That connection only: B never noticed, and A itself keeps working.
    assert_eq!(b.ask("PING"), "OK pong");
    assert_eq!(b.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");
    assert_eq!(a.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");

    // Fresh differential sweep, bit-identical to the direct session.
    faults::reset();
    for goal in SWEEP {
        let expected = if direct.implies_text(goal).expect("direct verdict") {
            "OK implied"
        } else {
            "OK not-implied"
        };
        assert_eq!(a.ask(&format!("IMPLIES course {goal}")), expected, "{goal}");
        assert_eq!(b.ask(&format!("IMPLIES course {goal}")), expected, "{goal}");
    }

    assert_eq!(a.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 1, "exactly the injected panic");
    faults::reset();
}

/// An overloaded server sheds with `BUSY` instead of hanging or
/// crashing — and the admitted request still completes with the right
/// verdict (degradation never flips an answer).
#[test]
fn overloaded_server_sheds_busy_and_never_flips_a_verdict() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(
        RegistryConfig::default(),
        ServerConfig {
            max_inflight: 1,
            queue_depth: 0,
            queue_wait_ms: 10,
            ..quick_cfg()
        },
    );
    let mut slow = Client::connect(addr);
    assert_eq!(
        slow.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    // Every dispatched request now dawdles 400 ms holding its admission
    // permit — the cheap way to wedge a 1-slot server.
    faults::configure("serve::dispatch", FaultAction::Delay(400));
    slow.send("IMPLIES course Course:[time, students:sid -> books]");
    std::thread::sleep(Duration::from_millis(100));

    let mut shed = Client::connect(addr);
    let busy = shed.ask("IMPLIES course Course:[cnum -> time]");
    assert!(busy.starts_with("BUSY "), "overload answers BUSY: {busy}");
    // The control plane keeps answering while the gate sheds.
    let stats_line = shed.ask("STATS");
    assert!(stats_line.starts_with("OK "), "{stats_line}");

    faults::reset();
    assert_eq!(
        slow.recv(),
        "OK implied",
        "the admitted request completes with the true verdict"
    );
    // Capacity freed: the previously-shed client is served normally.
    assert_eq!(
        shed.ask("IMPLIES course Course:[cnum -> time]"),
        "OK implied"
    );

    assert_eq!(shed.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert!(stats.shed >= 1, "{stats:?}");
    assert_eq!(stats.contained_panics, 0);
    faults::reset();
}

/// `ReturnExhausted` on the registry's query path surfaces as a typed
/// `EXHAUSTED` response — never an ERR, never a dropped connection.
#[test]
fn injected_exhaustion_is_a_typed_response() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut c = Client::connect(addr);
    assert_eq!(
        c.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    faults::configure_limited("serve::tenant_query", 1, FaultAction::ReturnExhausted);
    assert_eq!(
        c.ask("IMPLIES course Course:[cnum -> time]"),
        "EXHAUSTED injected fault (failpoint)"
    );
    assert_eq!(
        c.ask("IMPLIES course Course:[cnum -> time]"),
        "OK implied",
        "the fault was count-limited; service resumes"
    );

    faults::configure_limited("serve::dispatch", 1, FaultAction::ReturnExhausted);
    assert_eq!(
        c.ask("IMPLIES course Course:[cnum -> time]"),
        "EXHAUSTED injected fault (failpoint)"
    );
    assert_eq!(c.ask("IMPLIES course Course:[cnum -> time]"), "OK implied");

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
    faults::reset();
}

/// A respond-path fault (the write back to the client fails) drops that
/// connection only; the server and other connections keep serving.
#[test]
fn respond_fault_drops_one_connection_only() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut a = Client::connect(addr);
    assert_eq!(
        a.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    faults::configure_limited("serve::respond", 1, FaultAction::ReturnExhausted);
    a.send("IMPLIES course Course:[cnum -> time]");
    assert_eq!(a.recv(), "", "the faulted connection is hung up (EOF)");

    let mut b = Client::connect(addr);
    assert_eq!(
        b.ask("IMPLIES course Course:[cnum -> time]"),
        "OK implied",
        "fresh connections are unaffected"
    );
    assert_eq!(b.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
    faults::reset();
}

/// A parse-path fault turns every request into `ERR` without taking the
/// connection down; disarming restores service in place.
#[test]
fn parse_fault_is_an_err_line_not_a_hangup() {
    let _guard = serial();
    faults::reset();
    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut c = Client::connect(addr);

    faults::configure_limited("serve::parse", 1, FaultAction::ReturnExhausted);
    assert_eq!(c.ask("PING"), "ERR injected fault (failpoint)");
    assert_eq!(
        c.ask("PING"),
        "OK pong",
        "same connection, disarmed, serves"
    );

    assert_eq!(c.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
    faults::reset();
}

/// The ISSUE's mutation-chaos criterion: an armed `delta::retract` panic
/// answers `ERR` on its own connection only, and the resident session —
/// including a mutation applied *before* the fault — still matches a
/// fresh in-process rebuild bit for bit; disarmed, the retraction lands.
#[test]
fn retraction_panic_is_contained_and_session_matches_fresh_rebuild() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let schema = Schema::parse(&schema_src).expect("schema");
    let sigma = nfd::core::nfd::parse_set(&schema, &deps_src).expect("deps");

    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    assert_eq!(
        a.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    // Mutate once so the resident Σ differs from the LOAD sources — the
    // later rebuild comparison must see this survive the fault.
    let added = Nfd::parse(&schema, "Course:[students:sid -> cnum]").expect("added");
    assert!(a
        .ask("ADDDEP course Course:[students:sid -> cnum]")
        .starts_with("OK added"));

    // Armed: the retraction panics before touching Σ; the request
    // answers ERR on connection A only.
    faults::configure_limited("delta::retract", 1, FaultAction::Panic);
    let err = a.ask("DROPDEP course Course:[cnum -> time]");
    assert!(
        err.starts_with("ERR") && err.contains("delta::retract"),
        "the poisoned retraction answers a typed ERR: {err}"
    );
    assert_eq!(b.ask("PING"), "OK pong", "connection B never noticed");
    faults::reset();

    // The resident session matches a fresh rebuild over (Σ + added):
    // the faulted retraction must not have been half-applied.
    let mut grown = sigma.clone();
    grown.push(added);
    let direct = Session::new(&schema, &grown).expect("fresh rebuild");
    for goal in SWEEP {
        let expected = if direct.implies_text(goal).expect("direct verdict") {
            "OK implied"
        } else {
            "OK not-implied"
        };
        assert_eq!(a.ask(&format!("IMPLIES course {goal}")), expected, "{goal}");
        assert_eq!(b.ask(&format!("IMPLIES course {goal}")), expected, "{goal}");
    }

    // Disarmed, the same retraction applies; the sweep tracks it.
    assert!(b
        .ask("DROPDEP course Course:[cnum -> time]")
        .starts_with("OK dropped"));
    let retracted: Vec<Nfd> = {
        let target = Nfd::parse(&schema, "Course:[cnum -> time]").expect("target");
        let mut s = grown.clone();
        let pos = s.iter().position(|n| *n == target).expect("present");
        s.remove(pos);
        s
    };
    let direct = Session::new(&schema, &retracted).expect("fresh rebuild");
    for goal in SWEEP {
        let expected = if direct.implies_text(goal).expect("direct verdict") {
            "OK implied"
        } else {
            "OK not-implied"
        };
        assert_eq!(a.ask(&format!("IMPLIES course {goal}")), expected, "{goal}");
    }

    assert_eq!(a.ask("SHUTDOWN"), "OK draining");
    server.join().expect("server");
    faults::reset();
}

/// The ISSUE's epoch-swap criterion: a fault armed at `serve::epoch_swap`
/// fires *after* the next epoch is fully built and *before* it is
/// installed — the worst possible moment. Both the typed-return and the
/// panic leg must leave the old epoch serving its pre-mutation Σ, and a
/// disarmed retry must land the mutation cleanly.
#[test]
fn mid_swap_fault_leaves_the_old_epoch_serving() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();
    let flipped = "Course:[time -> cnum]";

    let (addr, server) = start(
        RegistryConfig {
            workers: 2,
            ..RegistryConfig::default()
        },
        quick_cfg(),
    );
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);
    assert_eq!(
        a.ask(&format!("LOAD course {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    assert_eq!(
        a.ask(&format!("IMPLIES course {flipped}")),
        "OK not-implied"
    );

    // Leg 1: typed return at the swap point — the mutation reports
    // EXHAUSTED, the built next epoch is discarded, the old one serves.
    faults::configure_limited("serve::epoch_swap", 1, FaultAction::ReturnExhausted);
    let resp = a.ask(&format!("ADDDEP course {flipped}"));
    assert_eq!(resp, "EXHAUSTED injected fault (failpoint)", "{resp}");
    assert_eq!(
        a.ask(&format!("IMPLIES course {flipped}")),
        "OK not-implied",
        "the discarded epoch must not have leaked its Σ"
    );
    faults::reset();

    // Leg 2: a panic mid-swap — contained to the request, old epoch
    // untouched, both connections keep serving.
    faults::configure_limited("serve::epoch_swap", 1, FaultAction::Panic);
    let err = a.ask(&format!("ADDDEP course {flipped}"));
    assert!(
        err.starts_with("ERR contained panic:") && err.contains("serve::epoch_swap"),
        "{err}"
    );
    assert_eq!(b.ask("PING"), "OK pong", "connection B never noticed");
    assert_eq!(
        b.ask(&format!("IMPLIES course {flipped}")),
        "OK not-implied",
        "a mid-swap panic must leave the old epoch serving"
    );
    assert_eq!(
        a.ask(&format!("IMPLIES course {flipped}")),
        "OK not-implied"
    );
    faults::reset();

    // Disarmed: the same mutation lands and the verdict flips.
    assert!(a
        .ask(&format!("ADDDEP course {flipped}"))
        .starts_with("OK added"));
    assert_eq!(a.ask(&format!("IMPLIES course {flipped}")), "OK implied");
    assert_eq!(b.ask(&format!("IMPLIES course {flipped}")), "OK implied");

    assert_eq!(a.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 1, "exactly the injected panic");
    faults::reset();
}

/// A panic armed at `serve::shared_cache` (the cross-tenant cache-pool
/// lookup inside LOAD/RESTORE) is contained to that request: no tenant
/// is half-registered, other tenants keep serving, and a disarmed
/// reload succeeds.
#[test]
fn shared_cache_fault_contains_the_load() {
    let _guard = serial();
    faults::reset();
    let (schema_src, deps_src) = course_sources();

    let (addr, server) = start(RegistryConfig::default(), quick_cfg());
    let mut a = Client::connect(addr);
    assert_eq!(
        a.ask(&format!("LOAD stable {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );

    faults::configure_limited("serve::shared_cache", 1, FaultAction::Panic);
    let err = a.ask(&format!("LOAD broken {schema_src} | {deps_src}"));
    assert!(
        err.starts_with("ERR contained panic:") && err.contains("serve::shared_cache"),
        "{err}"
    );
    faults::reset();

    // Nothing half-registered; the stable tenant kept its epoch.
    assert!(matches!(
        a.ask("IMPLIES broken Course:[cnum -> time]").as_str(),
        resp if resp.starts_with("ERR") && resp.contains("unknown tenant")
    ));
    assert_eq!(a.ask("IMPLIES stable Course:[cnum -> time]"), "OK implied");

    // Disarmed, the same LOAD lands and shares the stable tenant's
    // pooled cache.
    assert_eq!(
        a.ask(&format!("LOAD broken {schema_src} | {deps_src}")),
        "OK loaded deps=7"
    );
    assert_eq!(a.ask("IMPLIES broken Course:[cnum -> time]"), "OK implied");
    let stats_line = a.ask("STATS");
    assert!(stats_line.contains("shared_caches=1"), "{stats_line}");

    assert_eq!(a.ask("SHUTDOWN"), "OK draining");
    let stats = server.join().expect("server");
    assert_eq!(stats.contained_panics, 1, "exactly the injected panic");
    faults::reset();
}
